//! Std-only binary codec for simulator snapshots.
//!
//! Every crate in the workspace serializes its dynamic state through
//! [`SnapWriter`] / [`SnapReader`]: a flat little-endian byte stream with
//! no self-description, no alignment, and no external dependencies. The
//! format is deliberately dumb — the snapshot file framing (magic,
//! schema version, CRC guard, atomic rename) lives in `mlpwin-sim`;
//! this module only provides the primitive encode/decode vocabulary and
//! the CRC-32 used to guard it.
//!
//! Decoding is fallible: a truncated or corrupted stream yields a typed
//! [`SnapError`] instead of a panic, so the restore path can quarantine
//! the file and fall back to an older rotation.
//!
//! # Example
//!
//! ```
//! use mlpwin_isa::snap::{SnapReader, SnapWriter};
//!
//! let mut w = SnapWriter::new();
//! w.put_u64(42);
//! w.put_bool(true);
//! w.put_opt_u64(None);
//! let bytes = w.into_bytes();
//!
//! let mut r = SnapReader::new(&bytes);
//! assert_eq!(r.get_u64().unwrap(), 42);
//! assert!(r.get_bool().unwrap());
//! assert_eq!(r.get_opt_u64().unwrap(), None);
//! assert!(r.finish().is_ok());
//! ```

use std::fmt;

/// Errors produced while decoding a snapshot byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The stream ended before `wanted` bytes could be read at `offset`.
    ShortRead { offset: usize, wanted: usize },
    /// A tag byte (bool / option discriminant / enum variant) held a
    /// value outside its legal range.
    BadTag {
        offset: usize,
        tag: u8,
        what: &'static str,
    },
    /// A length prefix or count field was implausible (e.g. larger than
    /// the remaining stream), pointing at corruption.
    BadLength {
        offset: usize,
        len: u64,
        what: &'static str,
    },
    /// Decoding finished but `trailing` bytes were left unread —
    /// a schema mismatch between writer and reader.
    TrailingBytes { trailing: usize },
    /// A semantic check failed after structurally valid decoding
    /// (e.g. a geometry field disagreeing with the live config).
    Mismatch { what: &'static str },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::ShortRead { offset, wanted } => {
                write!(
                    f,
                    "snapshot truncated: wanted {wanted} bytes at offset {offset}"
                )
            }
            SnapError::BadTag { offset, tag, what } => {
                write!(
                    f,
                    "snapshot corrupt: bad {what} tag {tag:#04x} at offset {offset}"
                )
            }
            SnapError::BadLength { offset, len, what } => {
                write!(
                    f,
                    "snapshot corrupt: implausible {what} length {len} at offset {offset}"
                )
            }
            SnapError::TrailingBytes { trailing } => {
                write!(
                    f,
                    "snapshot schema mismatch: {trailing} trailing bytes after decode"
                )
            }
            SnapError::Mismatch { what } => {
                write!(f, "snapshot incompatible with live configuration: {what}")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), computed with a
/// lazily built 256-entry table. This is the checksum that guards every
/// snapshot file; it only needs to catch truncation and bit rot, not
/// adversarial tampering.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Slicing-by-8: eight derived tables let the hot loop fold one
    // 8-byte chunk per iteration instead of one byte — snapshot frames
    // run to megabytes and every save/load pays this checksum.
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    let t = TABLES.get_or_init(|| {
        let mut tables = [[0u32; 256]; 8];
        for (i, entry) in tables[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = tables[k - 1][i];
                tables[k][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        tables
    });
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..].try_into().expect("4 bytes"));
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Append-only little-endian byte sink. Infallible: writing can only
/// grow the buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter { buf: Vec::new() }
    }

    /// Creates a writer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> SnapWriter {
        SnapWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` travels as `u64` so 32- and 64-bit hosts interoperate.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// `f64` travels as raw IEEE-754 bits: bit-exact round-trip.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Raw bytes with a `u64` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// UTF-8 string with a `u64` length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Option discriminant (0 = None, 1 = Some) followed by the payload.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
        }
    }

    /// Generic option: discriminant byte, then `f` encodes the payload.
    pub fn put_opt<T>(&mut self, v: Option<&T>, f: impl FnOnce(&mut SnapWriter, &T)) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                f(self, x);
            }
        }
    }

    /// `u64` slice with a length prefix.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Generic sequence: length prefix, then `f` encodes each element.
    pub fn put_seq<T>(
        &mut self,
        items: impl ExactSizeIterator<Item = T>,
        mut f: impl FnMut(&mut SnapWriter, T),
    ) {
        self.put_usize(items.len());
        for item in items {
            f(self, item);
        }
    }
}

/// Cursor over an encoded byte stream. Every getter advances the cursor
/// and fails with a typed [`SnapError`] on underrun.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Creates a reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Current cursor offset (for error reporting by callers).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the stream was fully consumed; trailing bytes indicate a
    /// writer/reader schema mismatch.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes {
                trailing: self.buf.len() - self.pos,
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::ShortRead {
                offset: self.pos,
                wanted: n,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        let offset = self.pos;
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| SnapError::BadLength {
            offset,
            len: v,
            what: "usize",
        })
    }

    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        let offset = self.pos;
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(SnapError::BadTag {
                offset,
                tag,
                what: "bool",
            }),
        }
    }

    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Length-prefixed raw bytes. The length is validated against the
    /// remaining stream before any allocation.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let offset = self.pos;
        let len = self.get_usize()?;
        if len > self.remaining() {
            return Err(SnapError::BadLength {
                offset,
                len: len as u64,
                what: "bytes",
            });
        }
        self.take(len)
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapError> {
        let offset = self.pos;
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::BadTag {
            offset,
            tag: 0,
            what: "utf-8 string",
        })
    }

    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        let offset = self.pos;
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_u64()?)),
            tag => Err(SnapError::BadTag {
                offset,
                tag,
                what: "option",
            }),
        }
    }

    /// Generic option: reads the discriminant, then `f` decodes the
    /// payload when present.
    pub fn get_opt<T>(
        &mut self,
        f: impl FnOnce(&mut SnapReader<'a>) -> Result<T, SnapError>,
    ) -> Result<Option<T>, SnapError> {
        let offset = self.pos;
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            tag => Err(SnapError::BadTag {
                offset,
                tag,
                what: "option",
            }),
        }
    }

    /// Length-prefixed `Vec<u64>`.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, SnapError> {
        self.get_seq(|r| r.get_u64())
    }

    /// Generic sequence: reads the length prefix, then decodes each
    /// element with `f`. The count is sanity-checked against the
    /// remaining bytes (every element costs at least one byte) so a
    /// corrupted length cannot trigger a huge allocation.
    pub fn get_seq<T>(
        &mut self,
        mut f: impl FnMut(&mut SnapReader<'a>) -> Result<T, SnapError>,
    ) -> Result<Vec<T>, SnapError> {
        let offset = self.pos;
        let len = self.get_usize()?;
        if len > self.remaining() {
            return Err(SnapError::BadLength {
                offset,
                len: len as u64,
                what: "sequence",
            });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = SnapWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 7);
        w.put_i64(-42);
        w.put_usize(12345);
        w.put_bool(true);
        w.put_bool(false);
        w.put_f64(3.25);
        w.put_bytes(b"hello");
        w.put_str("snapshot");
        w.put_opt_u64(Some(9));
        w.put_opt_u64(None);
        w.put_u64_slice(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_usize().unwrap(), 12345);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_f64().unwrap(), 3.25);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "snapshot");
        assert_eq!(r.get_opt_u64().unwrap(), Some(9));
        assert_eq!(r.get_opt_u64().unwrap(), None);
        assert_eq!(r.get_u64_vec().unwrap(), vec![1, 2, 3]);
        assert!(r.finish().is_ok());
    }

    #[test]
    fn short_read_is_typed() {
        let mut r = SnapReader::new(&[1, 2]);
        let err = r.get_u64().unwrap_err();
        assert!(matches!(
            err,
            SnapError::ShortRead {
                offset: 0,
                wanted: 8
            }
        ));
    }

    #[test]
    fn bad_bool_tag_is_typed() {
        let mut r = SnapReader::new(&[7]);
        let err = r.get_bool().unwrap_err();
        assert!(matches!(err, SnapError::BadTag { tag: 7, .. }));
    }

    #[test]
    fn corrupt_length_rejected_before_allocation() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX); // absurd length prefix
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            r.get_bytes().unwrap_err(),
            SnapError::BadLength { .. } | SnapError::ShortRead { .. }
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = SnapWriter::new();
        w.put_u64(1);
        w.put_u8(0);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.get_u64().unwrap();
        assert_eq!(
            r.finish().unwrap_err(),
            SnapError::TrailingBytes { trailing: 1 }
        );
    }

    #[test]
    fn generic_seq_and_opt_round_trip() {
        let mut w = SnapWriter::new();
        let pairs = [(1u64, true), (2, false)];
        w.put_seq(pairs.iter(), |w, (a, b)| {
            w.put_u64(*a);
            w.put_bool(*b);
        });
        w.put_opt(Some(&77u32), |w, v| w.put_u32(*v));
        w.put_opt(None::<&u32>, |w, v| w.put_u32(*v));
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        let back = r.get_seq(|r| Ok((r.get_u64()?, r.get_bool()?))).unwrap();
        assert_eq!(back, vec![(1, true), (2, false)]);
        assert_eq!(r.get_opt(|r| r.get_u32()).unwrap(), Some(77));
        assert_eq!(r.get_opt(|r| r.get_u32()).unwrap(), None);
        assert!(r.finish().is_ok());
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Single-bit flip changes the CRC.
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn crc32_slicing_agrees_with_the_bytewise_definition() {
        // The 8-byte fold must agree with the plain one-byte recurrence
        // at every length, including the unaligned tails.
        fn bytewise(bytes: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in bytes {
                let mut c = (crc ^ b as u32) & 0xFF;
                for _ in 0..8 {
                    c = if c & 1 != 0 {
                        0xEDB8_8320 ^ (c >> 1)
                    } else {
                        c >> 1
                    };
                }
                crc = c ^ (crc >> 8);
            }
            crc ^ 0xFFFF_FFFF
        }
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(193) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), bytewise(&data[..len]), "len {len}");
        }
    }
}
