//! Architectural (logical) registers.
//!
//! The simulated ISA has 32 integer and 32 floating-point registers.
//! Integer register 0 is a normal register (unlike MIPS `$zero`) so that
//! workload generators can use the full namespace; generators that want a
//! constant source simply avoid writing a chosen register.

use std::fmt;

/// Number of integer architectural registers.
pub const NUM_INT_REGS: u8 = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: u8 = 32;
/// Total architectural register count.
pub const NUM_ARCH_REGS: u8 = NUM_INT_REGS + NUM_FP_REGS;

/// An architectural register identifier.
///
/// Indices `0..32` are integer registers, `32..64` floating-point. The
/// distinction only matters for workload realism (FP ops read/write FP
/// registers); the rename machinery treats the namespace uniformly.
///
/// # Example
///
/// ```
/// use mlpwin_isa::ArchReg;
/// let r = ArchReg::int(5);
/// let f = ArchReg::fp(5);
/// assert_ne!(r, f);
/// assert!(r.is_int() && f.is_fp());
/// assert_eq!(r.index(), 5);
/// assert_eq!(f.index(), 37);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Creates an integer register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub fn int(n: u8) -> ArchReg {
        assert!(n < NUM_INT_REGS, "integer register {n} out of range");
        ArchReg(n)
    }

    /// Creates a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub fn fp(n: u8) -> ArchReg {
        assert!(n < NUM_FP_REGS, "fp register {n} out of range");
        ArchReg(NUM_INT_REGS + n)
    }

    /// Creates a register from a flat index in `0..64`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 64`.
    #[inline]
    pub fn from_index(n: u8) -> ArchReg {
        assert!(n < NUM_ARCH_REGS, "register index {n} out of range");
        ArchReg(n)
    }

    /// Flat index in `0..64`, suitable for indexing a rename map table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True if this is one of the 32 integer registers.
    #[inline]
    pub fn is_int(self) -> bool {
        self.0 < NUM_INT_REGS
    }

    /// True if this is one of the 32 floating-point registers.
    #[inline]
    pub fn is_fp(self) -> bool {
        self.0 >= NUM_INT_REGS
    }

    /// Register number within its class (0..32).
    #[inline]
    pub fn class_index(self) -> u8 {
        if self.is_int() {
            self.0
        } else {
            self.0 - NUM_INT_REGS
        }
    }

    /// Iterator over every architectural register.
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..NUM_ARCH_REGS).map(ArchReg)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_int() {
            write!(f, "r{}", self.class_index())
        } else {
            write!(f, "f{}", self.class_index())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_namespaces_are_disjoint() {
        for n in 0..32 {
            assert!(ArchReg::int(n).is_int());
            assert!(ArchReg::fp(n).is_fp());
            assert_ne!(ArchReg::int(n), ArchReg::fp(n));
            assert_eq!(ArchReg::int(n).class_index(), n);
            assert_eq!(ArchReg::fp(n).class_index(), n);
        }
    }

    #[test]
    fn flat_index_round_trips() {
        for r in ArchReg::all() {
            assert_eq!(ArchReg::from_index(r.index() as u8), r);
        }
        assert_eq!(ArchReg::all().count(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_register_bounds_checked() {
        let _ = ArchReg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_register_bounds_checked() {
        let _ = ArchReg::fp(32);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ArchReg::int(3).to_string(), "r3");
        assert_eq!(ArchReg::fp(17).to_string(), "f17");
    }
}
