//! Deterministic pseudo-random number generation.
//!
//! The workspace deliberately does not use an external RNG crate for
//! simulation state: every experiment must replay bit-identically across
//! library upgrades. [`SplitMix64`] seeds [`Xoshiro256StarStar`], the
//! general-purpose generator used by the workload generators.

/// SplitMix64 — tiny, fast generator used to expand a single `u64` seed
/// into the larger state of [`Xoshiro256StarStar`].
///
/// # Example
///
/// ```
/// use mlpwin_isa::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Serializes the generator state for a snapshot.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.put_u64(self.state);
    }

    /// Restores the generator state from a snapshot.
    pub fn load_state(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        self.state = r.get_u64()?;
        Ok(())
    }
}

/// xoshiro256** — the workhorse generator (Blackman & Vigna). Fast, high
/// quality, and fully deterministic given the seed.
///
/// # Example
///
/// ```
/// use mlpwin_isa::Xoshiro256StarStar;
/// let mut rng = Xoshiro256StarStar::seed_from(7);
/// let x = rng.range(10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator by expanding `seed` with SplitMix64, per the
    /// reference implementation's recommendation.
    pub fn seed_from(seed: u64) -> Xoshiro256StarStar {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is the one invalid state; SplitMix64 cannot
        // produce four consecutive zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Xoshiro256StarStar { s }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range bound must be positive");
        // Lemire-style rejection-free-enough reduction; the simulator does
        // not need cryptographic uniformity, only determinism and lack of
        // gross modulo bias for small n.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.range(hi - lo)
    }

    /// Bernoulli trial: true with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Geometric-ish burst length: number of consecutive successes with
    /// continuation probability `p`, capped at `cap`. Used by generators
    /// that produce clustered events (e.g. L2-miss bursts).
    pub fn burst_len(&mut self, p: f64, cap: u32) -> u32 {
        let mut n = 1;
        while n < cap && self.chance(p) {
            n += 1;
        }
        n
    }

    /// Serializes the generator state for a snapshot.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        for &s in &self.s {
            w.put_u64(s);
        }
    }

    /// Restores the generator state from a snapshot.
    pub fn load_state(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        for s in &mut self.s {
            *s = r.get_u64()?;
        }
        Ok(())
    }

    /// Picks an index from a slice of non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "weights must not all be zero");
        let mut pick = self.range(total);
        for (i, &w) in weights.iter().enumerate() {
            if pick < w as u64 {
                return i;
            }
            pick -= w as u64;
        }
        unreachable!("weighted pick exhausted weights")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference output for seed 1234567 from the public-domain C code.
        let mut rng = SplitMix64::new(1234567);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        // Determinism.
        let mut rng2 = SplitMix64::new(1234567);
        assert_eq!(rng2.next_u64(), a);
        assert_eq!(rng2.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256StarStar::seed_from(99);
        let mut b = Xoshiro256StarStar::seed_from(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256StarStar::seed_from(100);
        let same = (0..100).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 5, "different seeds should diverge");
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Xoshiro256StarStar::seed_from(3);
        for _ in 0..10_000 {
            assert!(rng.range(7) < 7);
            let v = rng.range_between(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = Xoshiro256StarStar::seed_from(5);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.range(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} too skewed");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256StarStar::seed_from(11);
        assert!((0..1000).all(|_| !rng.chance(0.0)));
        assert!((0..1000).all(|_| rng.chance(1.0)));
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        assert!((23_000..27_000).contains(&hits));
    }

    #[test]
    fn burst_len_bounds() {
        let mut rng = Xoshiro256StarStar::seed_from(13);
        for _ in 0..1000 {
            let n = rng.burst_len(0.9, 16);
            assert!((1..=16).contains(&n));
        }
        // p = 0 always yields a single event.
        assert_eq!(rng.burst_len(0.0, 16), 1);
    }

    #[test]
    fn weighted_follows_weights() {
        let mut rng = Xoshiro256StarStar::seed_from(17);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.weighted(&[1, 2, 7])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        // Index 0 ~ 10% of 30k.
        assert!((1_500..4_500).contains(&counts[0]));
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn weighted_rejects_zero_weights() {
        let mut rng = Xoshiro256StarStar::seed_from(1);
        let _ = rng.weighted(&[0, 0]);
    }
}
