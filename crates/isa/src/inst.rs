//! The trace-record instruction format.
//!
//! An [`Instruction`] is one element of the dynamic instruction stream a
//! workload generator produces. It is a *timing* record: it names the
//! registers that create dependences, the memory address a load/store
//! touches, and the actual outcome of a branch — but carries no data
//! values, because the timing model never needs them.

use crate::op::OpClass;
use crate::reg::ArchReg;
use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::Addr;
use std::fmt;

/// A memory reference made by a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Byte address of the access.
    pub addr: Addr,
    /// Access size in bytes (1, 2, 4, or 8).
    pub size: u8,
}

impl MemRef {
    /// Creates a memory reference.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not one of 1, 2, 4, 8.
    pub fn new(addr: Addr, size: u8) -> MemRef {
        assert!(
            matches!(size, 1 | 2 | 4 | 8),
            "unsupported access size {size}"
        );
        MemRef { addr, size }
    }

    /// True if the two references touch at least one common byte.
    pub fn overlaps(&self, other: &MemRef) -> bool {
        let a0 = self.addr;
        let a1 = self.addr + self.size as Addr;
        let b0 = other.addr;
        let b1 = other.addr + other.size as Addr;
        a0 < b1 && b0 < a1
    }
}

/// The static kind of a control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch — predicted by the direction predictor.
    Conditional,
    /// Unconditional direct jump — needs only a BTB hit.
    Unconditional,
    /// Function call — pushes the return address on the RAS.
    Call,
    /// Function return — predicted by the RAS.
    Return,
}

/// Ground-truth outcome of a branch, supplied by the workload generator.
///
/// The branch predictor makes a genuine prediction at fetch; comparing it
/// with this record decides whether the pipeline goes down the wrong path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Whether the branch is actually taken.
    pub taken: bool,
    /// Actual target when taken.
    pub target: Addr,
    /// Static branch kind.
    pub kind: BranchKind,
}

/// One dynamic instruction of the simulated program.
///
/// Constructed by workload generators via the helper constructors
/// ([`Instruction::alu`], [`Instruction::load`], …) and consumed by the
/// out-of-order core.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Program counter (instruction addresses are 4-byte aligned).
    pub pc: Addr,
    /// Operation class.
    pub op: OpClass,
    /// Source registers (up to two).
    pub srcs: [Option<ArchReg>; 2],
    /// Destination register, if the op writes one.
    pub dest: Option<ArchReg>,
    /// Memory reference for loads and stores.
    pub mem: Option<MemRef>,
    /// Ground-truth branch outcome for control transfers.
    pub branch: Option<BranchInfo>,
}

impl Instruction {
    /// Creates a register-to-register operation.
    ///
    /// # Panics
    ///
    /// Panics if `op` is a memory or branch class, or if more than two
    /// sources are given.
    pub fn alu(pc: Addr, op: OpClass, dest: ArchReg, srcs: &[ArchReg]) -> Instruction {
        assert!(!op.is_mem() && !op.is_branch(), "alu() given {op}");
        assert!(srcs.len() <= 2, "at most two source registers");
        let mut s = [None, None];
        for (i, r) in srcs.iter().enumerate() {
            s[i] = Some(*r);
        }
        Instruction {
            pc,
            op,
            srcs: s,
            dest: Some(dest),
            mem: None,
            branch: None,
        }
    }

    /// Creates a load: `dest = mem[base + imm]` (the base register is the
    /// single source; the address is precomputed by the generator).
    pub fn load(pc: Addr, dest: ArchReg, base: ArchReg, mem: MemRef) -> Instruction {
        Instruction {
            pc,
            op: OpClass::Load,
            srcs: [Some(base), None],
            dest: Some(dest),
            mem: Some(mem),
            branch: None,
        }
    }

    /// Creates a store: `mem[base + imm] = data`.
    pub fn store(pc: Addr, data: ArchReg, base: ArchReg, mem: MemRef) -> Instruction {
        Instruction {
            pc,
            op: OpClass::Store,
            srcs: [Some(data), Some(base)],
            dest: None,
            mem: Some(mem),
            branch: None,
        }
    }

    /// Creates a conditional branch that tests `cond`.
    pub fn cond_branch(pc: Addr, cond: ArchReg, taken: bool, target: Addr) -> Instruction {
        Instruction {
            pc,
            op: OpClass::CondBranch,
            srcs: [Some(cond), None],
            dest: None,
            mem: None,
            branch: Some(BranchInfo {
                taken,
                target,
                kind: BranchKind::Conditional,
            }),
        }
    }

    /// Creates an unconditional jump, call, or return.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`BranchKind::Conditional`]; use
    /// [`Instruction::cond_branch`] for those.
    pub fn jump(pc: Addr, kind: BranchKind, target: Addr) -> Instruction {
        assert!(
            kind != BranchKind::Conditional,
            "use cond_branch for conditional branches"
        );
        Instruction {
            pc,
            op: OpClass::Jump,
            srcs: [None, None],
            dest: None,
            mem: None,
            branch: Some(BranchInfo {
                taken: true,
                target,
                kind,
            }),
        }
    }

    /// Creates a no-operation.
    pub fn nop(pc: Addr) -> Instruction {
        Instruction {
            pc,
            op: OpClass::Nop,
            srcs: [None, None],
            dest: None,
            mem: None,
            branch: None,
        }
    }

    /// True if the instruction writes an architectural register.
    #[inline]
    pub fn writes_register(&self) -> bool {
        self.dest.is_some()
    }

    /// Iterator over the present source registers.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// The fall-through PC (next sequential instruction).
    #[inline]
    pub fn next_pc(&self) -> Addr {
        self.pc + 4
    }

    /// The PC the committed-path stream continues at after this
    /// instruction: the branch target for taken branches, else
    /// fall-through.
    #[inline]
    pub fn successor_pc(&self) -> Addr {
        match &self.branch {
            Some(b) if b.taken => b.target,
            _ => self.next_pc(),
        }
    }

    /// Serializes the instruction record for a snapshot.
    pub fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.pc);
        w.put_u8(op_tag(self.op));
        for s in &self.srcs {
            w.put_opt(s.as_ref(), |w, r| w.put_u8(r.index() as u8));
        }
        w.put_opt(self.dest.as_ref(), |w, r| w.put_u8(r.index() as u8));
        w.put_opt(self.mem.as_ref(), |w, m| {
            w.put_u64(m.addr);
            w.put_u8(m.size);
        });
        w.put_opt(self.branch.as_ref(), |w, b| {
            w.put_bool(b.taken);
            w.put_u64(b.target);
            w.put_u8(branch_kind_tag(b.kind));
        });
    }

    /// Decodes an instruction record from a snapshot.
    pub fn decode(r: &mut SnapReader<'_>) -> Result<Instruction, SnapError> {
        let pc = r.get_u64()?;
        let op = op_from_tag(r)?;
        let mut srcs = [None, None];
        for s in &mut srcs {
            *s = r.get_opt(decode_reg)?;
        }
        let dest = r.get_opt(decode_reg)?;
        let mem = r.get_opt(|r| {
            let addr = r.get_u64()?;
            let offset = r.offset();
            let size = r.get_u8()?;
            if !matches!(size, 1 | 2 | 4 | 8) {
                return Err(SnapError::BadTag {
                    offset,
                    tag: size,
                    what: "mem size",
                });
            }
            Ok(MemRef { addr, size })
        })?;
        let branch = r.get_opt(|r| {
            let taken = r.get_bool()?;
            let target = r.get_u64()?;
            let kind = branch_kind_from_tag(r)?;
            Ok(BranchInfo {
                taken,
                target,
                kind,
            })
        })?;
        Ok(Instruction {
            pc,
            op,
            srcs,
            dest,
            mem,
            branch,
        })
    }

    /// Checks internal consistency (memory ops have a `mem`, branches have
    /// a `branch`, and vice versa). Generators call this in debug builds.
    pub fn validate(&self) -> Result<(), String> {
        if self.op.is_mem() != self.mem.is_some() {
            return Err(format!("{self}: mem field inconsistent with op class"));
        }
        if self.op.is_branch() != self.branch.is_some() {
            return Err(format!("{self}: branch field inconsistent with op class"));
        }
        if self.op == OpClass::Store && self.dest.is_some() {
            return Err(format!("{self}: store must not write a register"));
        }
        if !self.pc.is_multiple_of(4) {
            return Err(format!("{self}: pc not 4-byte aligned"));
        }
        Ok(())
    }
}

fn op_tag(op: OpClass) -> u8 {
    OpClass::ALL.iter().position(|&o| o == op).unwrap() as u8
}

fn op_from_tag(r: &mut SnapReader<'_>) -> Result<OpClass, SnapError> {
    let offset = r.offset();
    let tag = r.get_u8()?;
    OpClass::ALL
        .get(tag as usize)
        .copied()
        .ok_or(SnapError::BadTag {
            offset,
            tag,
            what: "op class",
        })
}

fn branch_kind_tag(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Unconditional => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
    }
}

fn branch_kind_from_tag(r: &mut SnapReader<'_>) -> Result<BranchKind, SnapError> {
    let offset = r.offset();
    match r.get_u8()? {
        0 => Ok(BranchKind::Conditional),
        1 => Ok(BranchKind::Unconditional),
        2 => Ok(BranchKind::Call),
        3 => Ok(BranchKind::Return),
        tag => Err(SnapError::BadTag {
            offset,
            tag,
            what: "branch kind",
        }),
    }
}

fn decode_reg(r: &mut SnapReader<'_>) -> Result<ArchReg, SnapError> {
    let offset = r.offset();
    let n = r.get_u8()?;
    if n >= crate::reg::NUM_ARCH_REGS {
        return Err(SnapError::BadTag {
            offset,
            tag: n,
            what: "register index",
        });
    }
    Ok(ArchReg::from_index(n))
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}: {}", self.pc, self.op)?;
        if let Some(d) = self.dest {
            write!(f, " {d}")?;
        }
        for s in self.sources() {
            write!(f, " {s}")?;
        }
        if let Some(m) = &self.mem {
            write!(f, " [{:#x}+{}]", m.addr, m.size)?;
        }
        if let Some(b) = &self.branch {
            write!(
                f,
                " ({} -> {:#x})",
                if b.taken { "taken" } else { "not-taken" },
                b.target
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_are_internally_consistent() {
        let insts = [
            Instruction::alu(0x100, OpClass::IntAlu, ArchReg::int(1), &[ArchReg::int(2)]),
            Instruction::load(
                0x104,
                ArchReg::int(3),
                ArchReg::int(1),
                MemRef::new(0x8000, 8),
            ),
            Instruction::store(
                0x108,
                ArchReg::int(3),
                ArchReg::int(1),
                MemRef::new(0x8008, 4),
            ),
            Instruction::cond_branch(0x10c, ArchReg::int(3), true, 0x100),
            Instruction::jump(0x110, BranchKind::Call, 0x4000),
            Instruction::nop(0x114),
        ];
        for i in &insts {
            i.validate().unwrap();
        }
    }

    #[test]
    fn successor_pc_follows_taken_branches() {
        let taken = Instruction::cond_branch(0x100, ArchReg::int(0), true, 0x80);
        let not_taken = Instruction::cond_branch(0x100, ArchReg::int(0), false, 0x80);
        let plain = Instruction::nop(0x100);
        assert_eq!(taken.successor_pc(), 0x80);
        assert_eq!(not_taken.successor_pc(), 0x104);
        assert_eq!(plain.successor_pc(), 0x104);
    }

    #[test]
    fn memref_overlap() {
        let a = MemRef::new(0x100, 8);
        assert!(a.overlaps(&MemRef::new(0x104, 4)));
        assert!(a.overlaps(&MemRef::new(0xfc, 8)));
        assert!(!a.overlaps(&MemRef::new(0x108, 4)));
        assert!(!a.overlaps(&MemRef::new(0xf8, 8)));
    }

    #[test]
    #[should_panic(expected = "unsupported access size")]
    fn memref_rejects_bad_size() {
        let _ = MemRef::new(0x100, 3);
    }

    #[test]
    fn validate_rejects_inconsistent_records() {
        let mut i = Instruction::nop(0x100);
        i.mem = Some(MemRef::new(0, 4));
        assert!(i.validate().is_err());

        let mut j = Instruction::load(0x104, ArchReg::int(1), ArchReg::int(2), MemRef::new(8, 8));
        j.mem = None;
        assert!(j.validate().is_err());

        let k = Instruction {
            pc: 0x102, // misaligned
            ..Instruction::nop(0x100)
        };
        assert!(k.validate().is_err());
    }

    #[test]
    fn sources_iterates_present_registers_only() {
        let s = Instruction::store(
            0x100,
            ArchReg::int(7),
            ArchReg::int(8),
            MemRef::new(0x10, 8),
        );
        let srcs: Vec<_> = s.sources().collect();
        assert_eq!(srcs, vec![ArchReg::int(7), ArchReg::int(8)]);
        let n = Instruction::nop(0x104);
        assert_eq!(n.sources().count(), 0);
    }

    #[test]
    fn snapshot_codec_round_trips_every_shape() {
        let insts = [
            Instruction::alu(0x100, OpClass::IntAlu, ArchReg::int(1), &[ArchReg::int(2)]),
            Instruction::load(
                0x104,
                ArchReg::fp(3),
                ArchReg::int(1),
                MemRef::new(0x8000, 8),
            ),
            Instruction::store(
                0x108,
                ArchReg::int(3),
                ArchReg::int(1),
                MemRef::new(0x8008, 4),
            ),
            Instruction::cond_branch(0x10c, ArchReg::int(3), true, 0x100),
            Instruction::jump(0x110, BranchKind::Return, 0x4000),
            Instruction::nop(0x114),
        ];
        let mut w = crate::snap::SnapWriter::new();
        for i in &insts {
            i.encode(&mut w);
        }
        let bytes = w.into_bytes();
        let mut r = crate::snap::SnapReader::new(&bytes);
        for i in &insts {
            assert_eq!(&Instruction::decode(&mut r).unwrap(), i);
        }
        r.finish().unwrap();
    }

    #[test]
    fn snapshot_codec_rejects_bad_op_tag() {
        let mut w = crate::snap::SnapWriter::new();
        Instruction::nop(0x100).encode(&mut w);
        let mut bytes = w.into_bytes();
        bytes[8] = 0xFF; // the op-class tag follows the 8-byte pc
        let mut r = crate::snap::SnapReader::new(&bytes);
        assert!(Instruction::decode(&mut r).is_err());
    }

    #[test]
    fn display_mentions_key_fields() {
        let l = Instruction::load(
            0x104,
            ArchReg::int(3),
            ArchReg::int(1),
            MemRef::new(0x8000, 8),
        );
        let s = l.to_string();
        assert!(s.contains("load"));
        assert!(s.contains("0x8000"));
    }
}
