//! Micro-operation classes and the function-unit kinds that execute them.
//!
//! Latencies follow the SimpleScalar 3.0 defaults that the paper's
//! simulator inherits (integer multiply 3, divide 20, FP add 2, FP
//! multiply 4, FP divide 12, FP square root 24). Loads have no static
//! latency here — their latency is produced by the memory hierarchy.

use std::fmt;

/// The class of a micro-operation.
///
/// Only timing-relevant structure is modelled: which function unit the
/// operation needs, how long it executes, and whether it touches memory or
/// redirects control flow.
///
/// # Example
///
/// ```
/// use mlpwin_isa::OpClass;
/// assert_eq!(OpClass::IntAlu.exec_latency(), 1);
/// assert!(OpClass::Load.is_mem());
/// assert!(OpClass::CondBranch.is_branch());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Single-cycle integer ALU operation (also used by address generation).
    IntAlu,
    /// Pipelined integer multiply.
    IntMul,
    /// Unpipelined integer divide.
    IntDiv,
    /// Floating-point add/sub/compare/convert.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide.
    FpDiv,
    /// Floating-point square root.
    FpSqrt,
    /// Memory read. Latency comes from the cache hierarchy.
    Load,
    /// Memory write. Retires from the store queue after commit.
    Store,
    /// Conditional direct branch.
    CondBranch,
    /// Unconditional jump/call/return (always taken).
    Jump,
    /// No-operation (consumes front-end bandwidth and a ROB slot only).
    Nop,
}

impl OpClass {
    /// All operation classes, in a stable order (useful for histograms).
    pub const ALL: [OpClass; 12] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::FpSqrt,
        OpClass::Load,
        OpClass::Store,
        OpClass::CondBranch,
        OpClass::Jump,
        OpClass::Nop,
    ];

    /// Execution latency in cycles once the operation starts on its
    /// function unit. For [`OpClass::Load`] this is the *address
    /// generation* latency; the memory access itself is timed by the
    /// memory system.
    #[inline]
    pub fn exec_latency(self) -> u32 {
        match self {
            OpClass::IntAlu | OpClass::CondBranch | OpClass::Jump | OpClass::Nop => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 20,
            OpClass::FpAlu => 2,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 12,
            OpClass::FpSqrt => 24,
            OpClass::Load | OpClass::Store => 1,
        }
    }

    /// Whether the operation occupies its function unit for the full
    /// latency (unpipelined) rather than accepting a new operation every
    /// cycle.
    #[inline]
    pub fn is_unpipelined(self) -> bool {
        matches!(self, OpClass::IntDiv | OpClass::FpDiv | OpClass::FpSqrt)
    }

    /// The function-unit kind this operation issues to.
    #[inline]
    pub fn fu_kind(self) -> FuKind {
        match self {
            OpClass::IntAlu | OpClass::CondBranch | OpClass::Jump | OpClass::Nop => FuKind::IntAlu,
            OpClass::IntMul | OpClass::IntDiv => FuKind::IntMulDiv,
            OpClass::FpAlu => FuKind::FpAlu,
            OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt => FuKind::FpMulDiv,
            OpClass::Load | OpClass::Store => FuKind::MemPort,
        }
    }

    /// True for loads and stores.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// True for control-transfer operations.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(self, OpClass::CondBranch | OpClass::Jump)
    }

    /// True for operations executed by the floating-point cluster.
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt
        )
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "ialu",
            OpClass::IntMul => "imul",
            OpClass::IntDiv => "idiv",
            OpClass::FpAlu => "fpalu",
            OpClass::FpMul => "fpmul",
            OpClass::FpDiv => "fpdiv",
            OpClass::FpSqrt => "fpsqrt",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::CondBranch => "br",
            OpClass::Jump => "jmp",
            OpClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// Function-unit pools of the simulated core (Table 1 of the paper:
/// 4 iALU, 2 iMULT/DIV, 2 Ld/St ports, 4 fpALU, 2 fpMULT/DIV/SQRT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuKind {
    /// Integer ALUs; also execute branches.
    IntAlu,
    /// Integer multiply/divide units.
    IntMulDiv,
    /// Load/store ports (shared address-generation + cache port).
    MemPort,
    /// Floating-point adders.
    FpAlu,
    /// Floating-point multiply/divide/sqrt units.
    FpMulDiv,
}

impl FuKind {
    /// All function-unit kinds in a stable order.
    pub const ALL: [FuKind; 5] = [
        FuKind::IntAlu,
        FuKind::IntMulDiv,
        FuKind::MemPort,
        FuKind::FpAlu,
        FuKind::FpMulDiv,
    ];

    /// Default pool size for this unit kind (paper Table 1).
    #[inline]
    pub fn default_count(self) -> usize {
        match self {
            FuKind::IntAlu => 4,
            FuKind::IntMulDiv => 2,
            FuKind::MemPort => 2,
            FuKind::FpAlu => 4,
            FuKind::FpMulDiv => 2,
        }
    }

    /// Dense index for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FuKind::IntAlu => 0,
            FuKind::IntMulDiv => 1,
            FuKind::MemPort => 2,
            FuKind::FpAlu => 3,
            FuKind::FpMulDiv => 4,
        }
    }
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuKind::IntAlu => "ialu",
            FuKind::IntMulDiv => "imuldiv",
            FuKind::MemPort => "memport",
            FuKind::FpAlu => "fpalu",
            FuKind::FpMulDiv => "fpmuldiv",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_simplescalar_defaults() {
        assert_eq!(OpClass::IntAlu.exec_latency(), 1);
        assert_eq!(OpClass::IntMul.exec_latency(), 3);
        assert_eq!(OpClass::IntDiv.exec_latency(), 20);
        assert_eq!(OpClass::FpAlu.exec_latency(), 2);
        assert_eq!(OpClass::FpMul.exec_latency(), 4);
        assert_eq!(OpClass::FpDiv.exec_latency(), 12);
        assert_eq!(OpClass::FpSqrt.exec_latency(), 24);
    }

    #[test]
    fn fu_mapping_is_consistent() {
        for op in OpClass::ALL {
            let fu = op.fu_kind();
            // Every op maps to a pool with at least one unit.
            assert!(fu.default_count() >= 1, "{op} -> {fu}");
        }
        assert_eq!(OpClass::CondBranch.fu_kind(), FuKind::IntAlu);
        assert_eq!(OpClass::Load.fu_kind(), FuKind::MemPort);
        assert_eq!(OpClass::FpSqrt.fu_kind(), FuKind::FpMulDiv);
    }

    #[test]
    fn unpipelined_ops_are_the_dividers() {
        let unpiped: Vec<_> = OpClass::ALL.iter().filter(|o| o.is_unpipelined()).collect();
        assert_eq!(
            unpiped,
            vec![&OpClass::IntDiv, &OpClass::FpDiv, &OpClass::FpSqrt]
        );
    }

    #[test]
    fn fu_indices_are_dense_and_unique() {
        let mut seen = [false; 5];
        for fu in FuKind::ALL {
            assert!(!seen[fu.index()]);
            seen[fu.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn classification_predicates() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(OpClass::CondBranch.is_branch());
        assert!(OpClass::Jump.is_branch());
        assert!(!OpClass::Load.is_branch());
        assert!(OpClass::FpSqrt.is_fp());
        assert!(!OpClass::IntMul.is_fp());
    }

    #[test]
    fn display_is_nonempty_and_unique() {
        let mut names: Vec<String> = OpClass::ALL.iter().map(|o| o.to_string()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
        assert!(names.iter().all(|n| !n.is_empty()));
    }
}
