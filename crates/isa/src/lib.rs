//! # mlpwin-isa
//!
//! Foundation types shared by every crate in the `mlpwin` workspace: the
//! micro-operation vocabulary, architectural registers, the trace-record
//! [`Instruction`] that workload generators emit and the simulator
//! consumes, and deterministic pseudo-random number generators.
//!
//! The simulated machine is a generic RISC-like 4-wide superscalar with an
//! Intel P6-type backend (see `mlpwin-ooo`). The ISA here is deliberately
//! *structural*: an [`Instruction`] carries everything the timing model
//! needs (operand registers, memory address, branch outcome) and nothing it
//! does not (actual data values). This is the standard trace-driven
//! substitution for the paper's execute-driven SimpleScalar/Alpha setup;
//! see `DESIGN.md` §1 for why the substitution preserves the evaluated
//! behaviour.
//!
//! ## Example
//!
//! ```
//! use mlpwin_isa::{Instruction, OpClass, ArchReg};
//!
//! let add = Instruction::alu(0x1000, OpClass::IntAlu, ArchReg::int(1),
//!                            &[ArchReg::int(2), ArchReg::int(3)]);
//! assert_eq!(add.op, OpClass::IntAlu);
//! assert!(add.writes_register());
//! ```

pub mod inst;
pub mod op;
pub mod reg;
pub mod rng;
pub mod snap;

pub use inst::{BranchInfo, BranchKind, Instruction, MemRef};
pub use op::{FuKind, OpClass};
pub use reg::ArchReg;
pub use rng::{SplitMix64, Xoshiro256StarStar};
pub use snap::{crc32, SnapError, SnapReader, SnapWriter};

/// Global dynamic-instruction sequence number (program order on the
/// committed path; wrong-path instructions use a disjoint high range).
pub type SeqNum = u64;

/// A simulated clock cycle.
pub type Cycle = u64;

/// A byte address in the simulated memory space.
pub type Addr = u64;
