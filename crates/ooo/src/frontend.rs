//! The fetch front end.
//!
//! Fetches up to `fetch_width` instructions per cycle from the committed
//! path (via a rewindable [`TraceWindow`]) or, after a branch
//! misprediction, from the deterministic wrong-path synthesizer. Fetched
//! instructions wait `front_depth` cycles (decode/rename pipe) in the
//! fetch queue before the dispatch stage may consume them.
//!
//! The front end consults the branch predictor for every fetched control
//! transfer. A misprediction silently switches the fetch source to the
//! wrong path at the *predicted* next PC — exactly what the hardware
//! would fetch — until the core observes the branch resolve and calls
//! [`FrontEnd::redirect`].

use mlpwin_branch::{BranchPredictor, PredictionOutcome};
use mlpwin_isa::snap::{SnapError, SnapReader, SnapWriter};
use mlpwin_isa::{Addr, Cycle, Instruction, SeqNum};
use mlpwin_memsys::{AccessKind, MemSystem, PathKind};
use mlpwin_workloads::{TraceWindow, Workload, WrongPathGen};
use std::collections::VecDeque;

/// An instruction sitting in the fetch queue, decoded and predicted,
/// waiting for the rename/dispatch stage.
#[derive(Debug, Clone)]
pub struct FetchedInst {
    /// The static instruction.
    pub inst: Instruction,
    /// Committed-path sequence number; `None` on the wrong path.
    pub trace_seq: Option<SeqNum>,
    /// Fetched past an unresolved mispredicted branch.
    pub wrong_path: bool,
    /// Prediction made at fetch (branches only).
    pub bp_outcome: Option<PredictionOutcome>,
    /// Cycle the instruction was fetched.
    pub fetched_at: Cycle,
    /// Cycle the instruction reaches the dispatch stage.
    pub ready_at: Cycle,
}

#[derive(Debug, Clone, Copy)]
enum Source {
    /// Fetching the committed path at this trace sequence number.
    Trace(SeqNum),
    /// Fetching the wrong path after a misprediction.
    Wrong { start_pc: Addr, offset: u64 },
}

/// Fetch statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontEndStats {
    /// Committed-path instructions fetched.
    pub trace_fetched: u64,
    /// Wrong-path instructions fetched.
    pub wrongpath_fetched: u64,
    /// Cycles fetch was stalled waiting on the I-cache.
    pub icache_stall_cycles: u64,
    /// Redirects received (mispredict recoveries + runahead exits).
    pub redirects: u64,
}

/// The fetch front end.
#[derive(Debug)]
pub struct FrontEnd<W> {
    window: TraceWindow<W>,
    wrong: WrongPathGen,
    source: Source,
    queue: VecDeque<FetchedInst>,
    queue_cap: usize,
    fetch_width: usize,
    front_depth: u32,
    stall_until: Cycle,
    /// End of the latest redirect's resume delay plus the decode refill
    /// (`front_depth`) — while `now` is below this, an empty fetch queue
    /// is recovery latency, not a fetch-bandwidth problem.
    recovery_until: Cycle,
    last_line: Option<Addr>,
    stats: FrontEndStats,
}

impl<W: Workload> FrontEnd<W> {
    /// Creates a front end fetching the trace from sequence 0.
    pub fn new(
        workload: W,
        wrongpath_seed: u64,
        fetch_width: usize,
        front_depth: u32,
        queue_cap: usize,
    ) -> FrontEnd<W> {
        FrontEnd {
            window: TraceWindow::new(workload),
            wrong: WrongPathGen::new(wrongpath_seed),
            source: Source::Trace(0),
            queue: VecDeque::with_capacity(queue_cap),
            queue_cap,
            fetch_width,
            front_depth,
            stall_until: 0,
            recovery_until: 0,
            last_line: None,
            stats: FrontEndStats::default(),
        }
    }

    /// Fetch statistics.
    pub fn stats(&self) -> &FrontEndStats {
        &self.stats
    }

    /// True while the front end is fetching down a wrong path.
    pub fn on_wrong_path(&self) -> bool {
        matches!(self.source, Source::Wrong { .. })
    }

    /// Oldest un-dispatched entry's readiness, for stall accounting.
    pub fn queue_is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The next instruction, if it has cleared the decode pipe, without
    /// consuming it (dispatch peeks to check LSQ capacity first).
    pub fn peek_ready(&self, now: Cycle) -> Option<&FetchedInst> {
        self.queue.front().filter(|f| f.ready_at <= now)
    }

    /// Pops the next instruction if it has cleared the decode pipe.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<FetchedInst> {
        if self.queue.front().is_some_and(|f| f.ready_at <= now) {
            self.queue.pop_front()
        } else {
            None
        }
    }

    /// Discards all fetched-but-not-dispatched instructions and resumes
    /// fetching the committed path at `resume_seq`, no earlier than
    /// `resume_at` (the misprediction penalty or runahead exit time).
    pub fn redirect(&mut self, resume_seq: SeqNum, resume_at: Cycle) {
        self.queue.clear();
        self.source = Source::Trace(resume_seq);
        self.stall_until = self.stall_until.max(resume_at);
        self.recovery_until = self
            .recovery_until
            .max(resume_at + self.front_depth as Cycle);
        self.last_line = None;
        self.stats.redirects += 1;
    }

    /// Whether an empty queue at `now` is explained by a recent redirect
    /// (the resume delay plus the decode pipe refilling) — the CPI
    /// stack's branch-recovery bucket.
    pub fn recovering(&self, now: Cycle) -> bool {
        now < self.recovery_until
    }

    /// Releases trace storage below the commit frontier.
    pub fn retire_below(&mut self, seq: SeqNum) {
        self.window.retire_below(seq);
    }

    /// Until when a [`fetch_cycle`](FrontEnd::fetch_cycle) call is
    /// guaranteed to be a no-op (for the stall-cycle fast-forward):
    ///
    /// - `Some(Cycle::MAX)` — the queue is full; fetch cannot make
    ///   progress until dispatch drains it (which is itself an event the
    ///   fast-forward already bounds on);
    /// - `Some(t)` — fetch is stalled on the I-cache or a redirect's
    ///   resume delay until cycle `t`;
    /// - `None` — fetch could make progress right now; never skip.
    pub fn quiescent_until(&self, now: Cycle) -> Option<Cycle> {
        if self.queue.len() >= self.queue_cap {
            Some(Cycle::MAX)
        } else if now < self.stall_until {
            Some(self.stall_until)
        } else {
            None
        }
    }

    /// When the oldest queued instruction clears the decode pipe (for
    /// the fast-forward's next-event bound).
    pub fn head_ready_at(&self) -> Option<Cycle> {
        self.queue.front().map(|f| f.ready_at)
    }

    /// End of the current redirect-recovery interval (see
    /// [`recovering`](FrontEnd::recovering)).
    pub fn recovery_until(&self) -> Cycle {
        self.recovery_until
    }

    /// Serializes the fetch state: the trace window (including the
    /// workload generator's own state), the fetch source, the decode
    /// queue, stall/recovery horizons and counters. The wrong-path
    /// synthesizer is a pure function of its seed and carries no state.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.window.save_state(w);
        match self.source {
            Source::Trace(seq) => {
                w.put_u8(0);
                w.put_u64(seq);
            }
            Source::Wrong { start_pc, offset } => {
                w.put_u8(1);
                w.put_u64(start_pc);
                w.put_u64(offset);
            }
        }
        w.put_seq(self.queue.iter(), |w, f| {
            f.inst.encode(w);
            w.put_opt_u64(f.trace_seq);
            w.put_bool(f.wrong_path);
            w.put_opt(f.bp_outcome.as_ref(), |w, o| o.encode(w));
            w.put_u64(f.fetched_at);
            w.put_u64(f.ready_at);
        });
        w.put_u64(self.stall_until);
        w.put_u64(self.recovery_until);
        w.put_opt_u64(self.last_line);
        w.put_u64(self.stats.trace_fetched);
        w.put_u64(self.stats.wrongpath_fetched);
        w.put_u64(self.stats.icache_stall_cycles);
        w.put_u64(self.stats.redirects);
    }

    /// Restores the state written by [`FrontEnd::save_state`].
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.window.load_state(r)?;
        let offset = r.offset();
        self.source = match r.get_u8()? {
            0 => Source::Trace(r.get_u64()?),
            1 => Source::Wrong {
                start_pc: r.get_u64()?,
                offset: r.get_u64()?,
            },
            tag => {
                return Err(SnapError::BadTag {
                    offset,
                    tag,
                    what: "fetch source",
                })
            }
        };
        let queue = r.get_seq(|r| {
            let inst = Instruction::decode(r)?;
            let trace_seq = r.get_opt_u64()?;
            let wrong_path = r.get_bool()?;
            let bp_outcome = r.get_opt(PredictionOutcome::decode)?;
            let fetched_at = r.get_u64()?;
            let ready_at = r.get_u64()?;
            Ok(FetchedInst {
                inst,
                trace_seq,
                wrong_path,
                bp_outcome,
                fetched_at,
                ready_at,
            })
        })?;
        if queue.len() > self.queue_cap {
            return Err(SnapError::Mismatch {
                what: "fetch-queue capacity",
            });
        }
        self.queue = queue.into();
        self.stall_until = r.get_u64()?;
        self.recovery_until = r.get_u64()?;
        self.last_line = r.get_opt_u64()?;
        self.stats.trace_fetched = r.get_u64()?;
        self.stats.wrongpath_fetched = r.get_u64()?;
        self.stats.icache_stall_cycles = r.get_u64()?;
        self.stats.redirects = r.get_u64()?;
        Ok(())
    }

    /// Runs one fetch cycle, filling the queue.
    pub fn fetch_cycle(&mut self, now: Cycle, bp: &mut BranchPredictor, mem: &mut MemSystem) {
        if now < self.stall_until {
            return;
        }
        for _ in 0..self.fetch_width {
            if self.queue.len() >= self.queue_cap {
                break;
            }
            let (inst, trace_seq, wrong_path) = match self.source {
                Source::Trace(seq) => (self.window.get(seq).clone(), Some(seq), false),
                Source::Wrong { start_pc, offset } => {
                    (self.wrong.inst(start_pc, offset), None, true)
                }
            };

            // Instruction-cache access once per new line.
            let line = inst.pc & !31;
            if self.last_line != Some(line) {
                let r = mem.access(
                    AccessKind::InstFetch,
                    inst.pc,
                    inst.pc,
                    now,
                    if wrong_path {
                        PathKind::Wrong
                    } else {
                        PathKind::Correct
                    },
                );
                self.last_line = Some(line);
                if r.ready_at > now + 1 {
                    // I-miss: fetch resumes when the line arrives.
                    self.stall_until = r.ready_at;
                    self.stats.icache_stall_cycles += r.ready_at - now;
                    break;
                }
            }

            let mut bp_outcome = None;
            let mut end_group = false;
            if inst.op.is_branch() && !wrong_path {
                let outcome = bp.predict(&inst);
                // Fetch follows the *prediction*.
                if outcome.mispredicted {
                    let predicted_next = if outcome.pred_taken {
                        outcome.pred_target.unwrap_or_else(|| inst.next_pc())
                    } else {
                        inst.next_pc()
                    };
                    self.source = Source::Wrong {
                        start_pc: predicted_next,
                        offset: 0,
                    };
                } else if let Source::Trace(seq) = self.source {
                    self.source = Source::Trace(seq + 1);
                }
                // A predicted-taken transfer ends the fetch group.
                end_group = outcome.pred_taken;
                bp_outcome = Some(outcome);
            } else {
                match &mut self.source {
                    Source::Trace(seq) => *seq += 1,
                    Source::Wrong { offset, .. } => *offset += 1,
                }
            }

            if wrong_path {
                self.stats.wrongpath_fetched += 1;
            } else {
                self.stats.trace_fetched += 1;
            }
            self.queue.push_back(FetchedInst {
                inst,
                trace_seq,
                wrong_path,
                bp_outcome,
                fetched_at: now,
                ready_at: now + self.front_depth as Cycle,
            });
            if end_group {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpwin_branch::PredictorConfig;
    use mlpwin_memsys::MemSystemConfig;
    use mlpwin_workloads::{profiles, ProfileWorkload};

    fn setup() -> (FrontEnd<ProfileWorkload>, BranchPredictor, MemSystem) {
        let w = profiles::by_name("gcc", 5).unwrap();
        (
            FrontEnd::new(w, 1, 4, 4, 16),
            BranchPredictor::new(PredictorConfig::default()),
            MemSystem::new(MemSystemConfig::default()),
        )
    }

    #[test]
    fn fetches_up_to_width_per_cycle() {
        let (mut fe, mut bp, mut mem) = setup();
        // Warm the I-cache (first access misses and stalls fetch).
        fe.fetch_cycle(0, &mut bp, &mut mem);
        let start = fe.stats().trace_fetched;
        let resume = 2000;
        fe.fetch_cycle(resume, &mut bp, &mut mem);
        let fetched = fe.stats().trace_fetched - start;
        assert!((1..=4).contains(&fetched), "fetched {fetched}");
    }

    #[test]
    fn decode_depth_delays_dispatch() {
        let (mut fe, mut bp, mut mem) = setup();
        fe.fetch_cycle(0, &mut bp, &mut mem);
        // First access is an I-miss; run until something is in the queue.
        let mut t = 0;
        while fe.queue_is_empty() && t < 5000 {
            t += 1;
            fe.fetch_cycle(t, &mut bp, &mut mem);
        }
        assert!(!fe.queue_is_empty());
        assert!(fe.pop_ready(t).is_none(), "needs front_depth cycles");
        assert!(fe.pop_ready(t + 4).is_some());
    }

    #[test]
    fn trace_sequence_numbers_are_consecutive() {
        let (mut fe, mut bp, mut mem) = setup();
        let mut seqs = Vec::new();
        for t in 0..50_000 {
            fe.fetch_cycle(t, &mut bp, &mut mem);
            // Emulate the backend: resolve each delivered branch (training
            // the predictor) and redirect on mispredictions.
            while let Some(f) = fe.pop_ready(t) {
                if let Some(s) = f.trace_seq {
                    seqs.push(s);
                }
                if let (Some(outcome), Some(s)) = (&f.bp_outcome, f.trace_seq) {
                    fe_resolve(&mut bp, &mut fe, &f.inst, outcome, s, t);
                    if outcome.mispredicted {
                        break; // queue was cleared by the redirect
                    }
                }
            }
            if seqs.len() > 300 {
                break;
            }
        }
        assert!(seqs.len() > 300, "only fetched {}", seqs.len());
        assert!(seqs.windows(2).all(|w| w[1] > w[0]));
    }

    fn fe_resolve(
        bp: &mut BranchPredictor,
        fe: &mut FrontEnd<ProfileWorkload>,
        inst: &Instruction,
        outcome: &PredictionOutcome,
        trace_seq: SeqNum,
        t: Cycle,
    ) {
        bp.resolve(inst, outcome);
        if outcome.mispredicted {
            fe.redirect(trace_seq + 1, t + 10);
        }
    }

    #[test]
    fn mispredict_switches_to_wrong_path_and_redirect_recovers() {
        let (mut fe, mut bp, mut mem) = setup();
        let mut t = 0;
        // Fetch until the predictor gets one wrong (cold predictor: soon).
        while !fe.on_wrong_path() && t < 50_000 {
            fe.fetch_cycle(t, &mut bp, &mut mem);
            while fe.pop_ready(t).is_some() {}
            t += 1;
        }
        assert!(fe.on_wrong_path(), "expected a misprediction");
        // Wrong-path instructions flow with trace_seq = None.
        let mut saw_wrong = false;
        for dt in 1..200 {
            fe.fetch_cycle(t + dt, &mut bp, &mut mem);
            while let Some(f) = fe.pop_ready(t + dt) {
                if f.wrong_path {
                    assert!(f.trace_seq.is_none());
                    saw_wrong = true;
                }
            }
        }
        assert!(saw_wrong);
        // Redirect back to the trace.
        fe.redirect(7, t + 300);
        assert!(!fe.on_wrong_path());
        assert!(fe.queue_is_empty());
        fe.fetch_cycle(t + 300, &mut bp, &mut mem);
        let mut found = None;
        for dt in 300..400 {
            if let Some(f) = fe.pop_ready(t + dt) {
                found = f.trace_seq;
                break;
            }
            fe.fetch_cycle(t + dt + 1, &mut bp, &mut mem);
        }
        assert_eq!(found, Some(7), "fetch resumes at the redirect target");
    }

    #[test]
    fn redirect_respects_resume_time() {
        let (mut fe, mut bp, mut mem) = setup();
        fe.redirect(0, 100);
        fe.fetch_cycle(50, &mut bp, &mut mem);
        assert!(fe.queue_is_empty(), "must not fetch before resume_at");
        fe.fetch_cycle(100, &mut bp, &mut mem);
        // May still be an I-miss stall, but the attempt happened: either
        // queued or stalled on the cache.
        assert!(fe.stats().redirects == 1);
    }
}
