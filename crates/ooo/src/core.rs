//! The out-of-order pipeline.
//!
//! One [`Core::step`] simulates one clock cycle; stages run back-to-front
//! (writeback → commit → resize → issue → dispatch → fetch) so that
//! same-cycle hand-offs resolve like hardware's.
//!
//! The reorder buffer is the spine: a `VecDeque<DynInst>` in allocation
//! order whose entries fuse ROB, issue-queue and LSQ state. Dynamic
//! sequence numbers are assigned at dispatch, so they are contiguous
//! within the ROB and `dyn_seq - head.dyn_seq` indexes it directly.
//!
//! The hot path is allocation-free: the ROB deque is pre-sized to the
//! largest configured level (it never reallocates), the ready set is a
//! packed bitmap over ROB slots ([`ReadyRing`]) walked in place by the
//! select loop, and blocked loads rotate through a pre-sorted deque.
//! When the pipeline is provably inert — dispatch blocked, nothing
//! ready, commit frozen, front end quiescent, policy quiet — the
//! stall-cycle fast-forward jumps `now` to the next event and
//! bulk-charges the skipped cycles to the same CPI bucket they would
//! have accrued one at a time (`DESIGN.md` §10).

use crate::config::{ConfigError, CoreConfig};
use crate::error::{PipelineError, StallSnapshot};
use crate::events::{EngineCounters, EventWheel, WakeSource};
use crate::frontend::{FetchedInst, FrontEnd};
use crate::fu::FuPool;
use crate::lsq::{LoadCheck, Lsq};
use crate::policy::WindowPolicy;
use crate::ready::ReadyRing;
use crate::rename::RenameMap;
use crate::runahead::{CauseStatusTable, RaLookup, RunaheadCache};
use crate::stats::{CoreStats, CpiBucket, IntervalSample, CPI_BUCKETS};
#[cfg(feature = "trace")]
use crate::trace::{TraceEventKind, Tracer};
use crate::types::{DynInst, DynSeq, MemState};
use mlpwin_branch::BranchPredictor;
use mlpwin_isa::snap::{SnapError, SnapReader, SnapWriter};
use mlpwin_isa::{Addr, Cycle, OpClass, SeqNum};
use mlpwin_memsys::{AccessKind, MemSystem, PathKind};
use mlpwin_workloads::Workload;
use std::collections::VecDeque;

/// Why dispatch allocated nothing this cycle — the raw observation the
/// CPI-stack accounting pass refines into a [`CpiBucket`]. The dispatch
/// stage checks these conditions in a fixed priority order, so at most
/// one blocks any given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DispatchBlock {
    Transition,
    ShrinkWait,
    RobFull,
    IqFull,
    LsqFull,
    FetchEmpty,
}

impl DispatchBlock {
    fn tag(self) -> u8 {
        match self {
            DispatchBlock::Transition => 0,
            DispatchBlock::ShrinkWait => 1,
            DispatchBlock::RobFull => 2,
            DispatchBlock::IqFull => 3,
            DispatchBlock::LsqFull => 4,
            DispatchBlock::FetchEmpty => 5,
        }
    }

    fn from_tag(r: &mut SnapReader<'_>) -> Result<DispatchBlock, SnapError> {
        let offset = r.offset();
        let tag = r.get_u8()?;
        match tag {
            0 => Ok(DispatchBlock::Transition),
            1 => Ok(DispatchBlock::ShrinkWait),
            2 => Ok(DispatchBlock::RobFull),
            3 => Ok(DispatchBlock::IqFull),
            4 => Ok(DispatchBlock::LsqFull),
            5 => Ok(DispatchBlock::FetchEmpty),
            tag => Err(SnapError::BadTag {
                offset,
                tag,
                what: "dispatch block",
            }),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Episode {
    resume_seq: SeqNum,
    end_at: Cycle,
    trigger_pc: Addr,
    l2_misses: u32,
}

/// Zeroed statistics shaped for `config`'s level ladder.
fn fresh_stats(config: &CoreConfig) -> CoreStats {
    CoreStats {
        level_cycles: vec![0; config.levels.len()],
        cpi_stack: vec![[0; CPI_BUCKETS]; config.levels.len()],
        ..CoreStats::default()
    }
}

/// A periodic snapshot consumer: called with the current cycle and the
/// serialized core image at every snapshot-cadence point.
pub type SnapshotSink = Box<dyn FnMut(Cycle, &[u8])>;

/// The simulated processor: front end, window resources, execution
/// engine, memory hierarchy, and the window-resizing policy.
pub struct Core<W> {
    cfg: CoreConfig,
    mem: MemSystem,
    bp: BranchPredictor,
    front: FrontEnd<W>,
    policy: Box<dyn WindowPolicy>,

    now: Cycle,
    level: usize,
    next_dyn: DynSeq,
    rob: VecDeque<DynInst>,
    iq_occ: usize,
    lsq: Lsq,
    rename: RenameMap,
    fu: FuPool,

    /// (ready_time, seq) of instructions whose operands will be ready —
    /// a calendar queue whose head doubles as the fast-forward's
    /// operand-wakeup bound.
    pending_ready: EventWheel,
    /// Instructions ready to issue now; the select loop walks the ring
    /// in place, oldest first.
    ready: ReadyRing,
    /// Loads waiting behind an un-issued overlapping store, kept sorted
    /// by age (oldest at the front).
    blocked_loads: VecDeque<DynSeq>,
    /// (complete_at, seq) execution-completion events — the writeback
    /// stage's calendar queue, and the fast-forward's completion bound.
    completions: EventWheel,

    alloc_stall_until: Cycle,
    shrink_wait: bool,
    l2_miss_events: u32,

    // Runahead.
    ra_cache: Option<RunaheadCache>,
    cst: Option<CauseStatusTable>,
    episode: Option<Episode>,
    arch_inv: [bool; 64],
    last_suppressed: Option<DynSeq>,

    // Observability.
    /// What dispatch did this cycle (instructions allocated, or the
    /// first blocking condition) — consumed by the accounting pass.
    cycle_dispatched: usize,
    cycle_block: Option<DispatchBlock>,
    /// No issue-side event this cycle could change a blocked load's
    /// outcome next cycle (no store executed, no port-starved retry) —
    /// part of the fast-forward legality check.
    issue_quiesced: bool,
    /// Bucket the accounting pass charged the cycle that just ran; the
    /// fast-forward bulk-charges skipped cycles to the same bucket.
    last_bucket: CpiBucket,
    /// Absolute deadline of the current `run`/`run_warmup` call
    /// (`Cycle::MAX` when unlimited). The fast-forward never skips past
    /// it, so `DeadlineExceeded` fires on the same cycle either way.
    deadline_at: Cycle,
    /// `stats.committed_insts` threshold at which the current
    /// `run`/`run_warmup` call stops. Once reached, the driver loop
    /// exits after the current step, so the fast-forward must not tack
    /// a skip onto that final step: a single-stepped run would never
    /// execute those cycles, and the reported totals would diverge.
    commit_stop: u64,
    /// The level the policy asked for at the last resize call. A
    /// pending shrink (`last_target < level`) re-fires every cycle, so
    /// the fast-forward may only skip it while the doomed regions stay
    /// occupied.
    last_target: usize,
    /// Whether the last resize call changed the level. A quiet policy's
    /// answer is only guaranteed constant for a constant
    /// `current_level` argument, so the fast-forward sits out the cycle
    /// right after a transition (back-to-back shrinks chain this way).
    level_changed: bool,
    /// Cycles elided by the stall fast-forward — a host-performance
    /// diagnostic, deliberately kept outside [`CoreStats`] so A/B runs
    /// with the fast-forward on and off stay bit-identical.
    ff_cycles: u64,
    /// Cycles executed as real pipeline steps — counted directly rather
    /// than derived from `now` because [`restore`](Core::restore)
    /// rewinds the clock while this host-side counter (like
    /// `ff_cycles`) keeps measuring what *this* core object executed.
    stepped_cycles: u64,
    /// Coasts ended per [`WakeSource`] — host-side telemetry with the
    /// same outside-the-stats contract as `ff_cycles`.
    wake_hist: [u64; WakeSource::COUNT],
    /// Committed-instruction count at the last interval boundary.
    interval_last_insts: u64,
    #[cfg(feature = "trace")]
    tracer: Option<Tracer>,

    stats: CoreStats,
    last_commit_cycle: Cycle,
    /// Committed-path instructions over the core's whole lifetime —
    /// unlike `stats.committed_insts`, never cleared by
    /// [`reset_counters`](Core::reset_counters), so fault-injection
    /// triggers count warm-up and measurement alike.
    total_committed: u64,

    /// Receiver for the periodic snapshots taken every
    /// `snapshot_cycles` measured cycles; the driver loop calls it with
    /// the current cycle and the encoded image. Not part of the
    /// simulated state: presence or absence never changes what the
    /// pipeline does.
    snapshot_sink: Option<SnapshotSink>,
}

impl<W: Workload> Core<W> {
    /// Builds a core over `workload` with the given window policy.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation; use
    /// [`try_new`](Core::try_new) to handle the error instead.
    pub fn new(config: CoreConfig, workload: W, policy: Box<dyn WindowPolicy>) -> Core<W> {
        match Core::try_new(config, workload, policy) {
            Ok(core) => core,
            Err(e) => panic!("invalid core configuration: {e}"),
        }
    }

    /// Builds a core over `workload`, rejecting a malformed
    /// configuration (empty or non-monotone level ladder, zero-capacity
    /// resources, ...) with a typed [`ConfigError`] before any state is
    /// allocated.
    pub fn try_new(
        config: CoreConfig,
        workload: W,
        policy: Box<dyn WindowPolicy>,
    ) -> Result<Core<W>, ConfigError> {
        config.validate()?;
        let mem = MemSystem::new(config.memory.clone());
        let bp = BranchPredictor::new(config.predictor.clone());
        let front = FrontEnd::new(
            workload,
            config.wrongpath_seed,
            config.fetch_width,
            config.front_depth,
            config.fetch_queue,
        );
        let (ra_cache, cst) = match &config.runahead {
            Some(opts) => (
                Some(RunaheadCache::new(
                    opts.cache_bytes,
                    opts.cache_ways,
                    opts.cache_line,
                )),
                opts.use_cause_status_table
                    .then(|| CauseStatusTable::new(opts.cst_entries)),
            ),
            None => (None, None),
        };
        let stats = fresh_stats(&config);
        #[cfg(feature = "trace")]
        let tracer = config.trace.map(Tracer::new);
        // Size every hot-path container to the largest level up front:
        // the ROB ring then never reallocates, even across enlarges (the
        // event wheels allocate their slot table eagerly on their own).
        let max_rob = config.max_level_spec().rob;
        Ok(Core {
            fu: FuPool::new(config.fu_counts),
            cfg: config,
            mem,
            bp,
            front,
            policy,
            now: 0,
            level: 0,
            next_dyn: 1,
            rob: VecDeque::with_capacity(max_rob),
            iq_occ: 0,
            lsq: Lsq::new(),
            rename: RenameMap::new(),
            pending_ready: EventWheel::new(),
            ready: ReadyRing::with_capacity(max_rob),
            blocked_loads: VecDeque::new(),
            completions: EventWheel::new(),
            alloc_stall_until: 0,
            shrink_wait: false,
            l2_miss_events: 0,
            ra_cache,
            cst,
            episode: None,
            arch_inv: [false; 64],
            last_suppressed: None,
            cycle_dispatched: 0,
            cycle_block: None,
            issue_quiesced: true,
            last_bucket: CpiBucket::Base,
            deadline_at: Cycle::MAX,
            commit_stop: u64::MAX,
            last_target: 0,
            level_changed: false,
            ff_cycles: 0,
            stepped_cycles: 0,
            wake_hist: [0; WakeSource::COUNT],
            interval_last_insts: 0,
            #[cfg(feature = "trace")]
            tracer,
            stats,
            last_commit_cycle: 0,
            total_committed: 0,
            snapshot_sink: None,
        })
    }

    /// Runs until `n_insts` committed-path instructions retire, then
    /// finalizes memory-side accounting and returns the statistics.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Stall`] when no instruction commits for
    /// `watchdog_cycles` (a livelocked pipeline — a modelling bug or an
    /// injected fault), and [`PipelineError::DeadlineExceeded`] when the
    /// call consumes more than `deadline_cycles` wall cycles while still
    /// making progress. Both carry a [`StallSnapshot`] of the machine
    /// state for post-mortem triage.
    pub fn run(&mut self, n_insts: u64) -> Result<CoreStats, PipelineError> {
        self.arm_run(n_insts);
        self.drive()?;
        self.mem.finalize();
        Ok(self.stats.clone())
    }

    /// Arms the commit target and deadline of a measurement run without
    /// stepping: [`run`](Core::run) is `arm_run` + drive + finalize.
    ///
    /// The interval-parallel sweep uses the split form so it can
    /// snapshot the *armed* pre-measurement state as interval 0's start
    /// boundary — a worker restoring that image then replays the exact
    /// run, commit target and deadline included, without re-arming.
    pub fn arm_run(&mut self, n_insts: u64) {
        self.arm_deadline(self.now);
        self.commit_stop = n_insts;
    }

    /// Drives an armed (or snapshot-restored) measurement run until the
    /// measured-cycle counter reaches `until`, or the commit target
    /// lands first. Returns `true` when the run completed (commit
    /// target reached) and `false` when it paused at the cycle bound;
    /// unlike [`run`](Core::run) nothing is finalized or cloned — the
    /// caller reads [`stats`](Core::stats) at each pause point.
    ///
    /// `until` must be a cadence point the fast-forward pins
    /// ([`CoreConfig::snapshot_cycles`] or
    /// [`CoreConfig::interval_cycles`] multiples), or the fast-forward
    /// may legitimately skip straight over it, leaving `stats.cycles`
    /// past `until` — callers stitching intervals must verify
    /// `stats.cycles == until` on a `false` return and treat an
    /// overshoot as a hard error rather than difference the mismatched
    /// boundary (see `StatsDelta`).
    ///
    /// # Errors
    ///
    /// Same watchdog/deadline contract as [`run`](Core::run).
    pub fn run_to_cycle(&mut self, until: Cycle) -> Result<bool, PipelineError> {
        while self.stats.committed_insts < self.commit_stop {
            if self.stats.cycles >= until {
                return Ok(false);
            }
            self.step();
            self.maybe_snapshot();
            self.check_progress()?;
        }
        Ok(true)
    }

    /// Runs `n_insts` committed instructions as warm-up, then clears all
    /// counters (pipeline, memory, predictor) while keeping every
    /// microarchitectural table warm — the equivalent of the paper's
    /// fast-forward before measurement.
    ///
    /// # Errors
    ///
    /// Same watchdog/deadline contract as [`run`](Core::run); counters
    /// are left un-cleared when the warm-up fails, so the snapshot and
    /// any later diagnostics still see the stalled state.
    pub fn run_warmup(&mut self, n_insts: u64) -> Result<(), PipelineError> {
        self.arm_deadline(self.now);
        self.commit_stop = self.stats.committed_insts + n_insts;
        self.drive()?;
        self.reset_counters();
        Ok(())
    }

    /// Continues an interrupted measurement run restored via
    /// [`restore`](Core::restore): same contract as [`run`](Core::run),
    /// but the commit target and the deadline come from the snapshot
    /// instead of being re-armed, so the resumed run stops — and times
    /// out — on exactly the cycle the uninterrupted run would have.
    ///
    /// # Errors
    ///
    /// Same watchdog/deadline contract as [`run`](Core::run).
    pub fn resume_run(&mut self) -> Result<CoreStats, PipelineError> {
        self.drive()?;
        self.mem.finalize();
        Ok(self.stats.clone())
    }

    /// Continues an interrupted warm-up restored via
    /// [`restore`](Core::restore); counterpart of
    /// [`resume_run`](Core::resume_run) for the
    /// [`run_warmup`](Core::run_warmup) phase.
    ///
    /// # Errors
    ///
    /// Same watchdog/deadline contract as [`run`](Core::run).
    pub fn resume_warmup(&mut self) -> Result<(), PipelineError> {
        self.drive()?;
        self.reset_counters();
        Ok(())
    }

    /// The shared driver loop: steps until the armed commit target is
    /// reached, taking periodic snapshots along the way. The snapshot is
    /// taken *before* the progress check so that a run dying to the
    /// watchdog or the deadline still leaves its latest image behind.
    fn drive(&mut self) -> Result<(), PipelineError> {
        while self.stats.committed_insts < self.commit_stop {
            self.step();
            self.maybe_snapshot();
            self.check_progress()?;
        }
        Ok(())
    }

    /// Installs the receiver for periodic snapshots (see
    /// [`CoreConfig::snapshot_cycles`]); replaces any previous sink.
    /// The sink is host-side plumbing, not simulated state: installing
    /// one never changes the simulated outcome.
    pub fn set_snapshot_sink(&mut self, sink: SnapshotSink) {
        self.snapshot_sink = Some(sink);
    }

    /// Hands the current encoded image to the sink when the measured
    /// cycle counter sits on a `snapshot_cycles` boundary. The cadence
    /// is keyed on `stats.cycles` (not `now`) so warm-up resets do not
    /// shift the measurement-phase snapshot points.
    fn maybe_snapshot(&mut self) {
        let Some(cadence) = self.cfg.snapshot_cycles else {
            return;
        };
        if self.snapshot_sink.is_none() || !self.stats.cycles.is_multiple_of(cadence) {
            return;
        }
        let bytes = self.snapshot();
        let now = self.now;
        if let Some(mut sink) = self.snapshot_sink.take() {
            sink(now, &bytes);
            self.snapshot_sink = Some(sink);
        }
    }

    /// Converts the per-call relative deadline into the absolute cycle
    /// the fast-forward must not skip past.
    fn arm_deadline(&mut self, start: Cycle) {
        self.deadline_at = match self.cfg.deadline_cycles {
            Some(limit) => start.saturating_add(limit),
            None => Cycle::MAX,
        };
    }

    /// The watchdog: raises a typed error when the pipeline stops
    /// committing or overruns the armed absolute deadline.
    fn check_progress(&self) -> Result<(), PipelineError> {
        let stalled_for = self.now - self.last_commit_cycle;
        if stalled_for >= self.cfg.watchdog_cycles {
            return Err(PipelineError::Stall {
                budget: self.cfg.watchdog_cycles,
                snapshot: self.stall_snapshot(stalled_for),
            });
        }
        if self.now >= self.deadline_at {
            return Err(PipelineError::DeadlineExceeded {
                limit: self.cfg.deadline_cycles.unwrap_or(Cycle::MAX),
                snapshot: self.stall_snapshot(stalled_for),
            });
        }
        Ok(())
    }

    /// Captures the diagnostic state the watchdog reports.
    fn stall_snapshot(&self, stalled_for: u64) -> StallSnapshot {
        StallSnapshot {
            cycle: self.now,
            committed_insts: self.stats.committed_insts,
            stalled_for,
            level: self.level,
            rob_len: self.rob.len(),
            iq_occ: self.iq_occ,
            lsq_occ: self.lsq.occupancy(),
            outstanding_misses: self.mem.outstanding_misses(),
            in_runahead: self.episode.is_some(),
            rob_head: self
                .rob
                .front()
                .map(|d| format!("{:?}", (&d.inst, d.issued, d.completed))),
        }
    }

    /// Clears statistics without touching microarchitectural state.
    pub fn reset_counters(&mut self) {
        self.stats = fresh_stats(&self.cfg);
        self.mem.reset_stats();
        self.bp.reset_stats();
        self.last_commit_cycle = self.now;
        self.interval_last_insts = 0;
        #[cfg(feature = "trace")]
        {
            // The trace restarts with the measurement window, like every
            // other counter: warm-up events are observability noise.
            self.tracer = self.cfg.trace.map(Tracer::new);
        }
    }

    /// Simulates one clock cycle.
    pub fn step(&mut self) {
        self.now += 1;
        self.stepped_cycles += 1;
        let now = self.now;
        self.fu.begin_cycle(now);
        if self.episode.is_some_and(|e| now >= e.end_at) {
            self.exit_runahead(now);
        }
        self.writeback(now);
        self.commit(now);
        self.resize(now);
        self.issue(now);
        self.dispatch(now);
        self.front.fetch_cycle(now, &mut self.bp, &mut self.mem);

        self.stats.cycles += 1;
        self.stats.level_cycles[self.level] += 1;
        if self.episode.is_some() {
            self.stats.runahead_cycles += 1;
        }
        self.account_cycle(now);
        self.collect_interval();
        self.stall_fast_forward();
    }

    // ------------------------------------------------- stall fast-forward

    /// Whether the commit stage is provably a no-op for every cycle
    /// until the next pipeline event (writeback, promoted operand,
    /// episode end, ...) — one leg of the fast-forward legality check.
    fn commit_frozen(&self) -> bool {
        let Some(head) = self.rob.front() else {
            return true; // nothing to commit
        };
        if head.completed {
            return false; // would retire next cycle
        }
        let head_blocked_l2_load = head.inst.op == OpClass::Load && head.issued && head.l2_miss;
        if !head_blocked_l2_load {
            return true; // an incomplete non-trigger head just stalls
        }
        if self.episode.is_some() {
            return false; // runahead would pseudo-retire it next cycle
        }
        if self.cfg.runahead.is_none() || head.wrong_path {
            return true; // no entry mechanism: a plain memory stall
        }
        // An un-entered runahead trigger is only inert once suppression
        // has latched for this head: the guarded stat bump has already
        // happened, and (the remaining-latency test being monotone, the
        // cause-status table frozen between episodes) entry is ruled out
        // until the head completes.
        self.last_suppressed == Some(head.dyn_seq)
    }

    /// The stall-cycle fast-forward. When the cycle that just ran proves
    /// the machine inert — dispatch blocked, nothing ready or issuable,
    /// commit frozen, front end quiescent, policy quiet, no fresh L2
    /// miss for the policy to see — every cycle up to the next event is
    /// an exact replay of it, so `now` jumps there directly and the
    /// skipped cycles are charged in bulk to the same counters single
    /// stepping would have charged.
    ///
    /// The next-event bound comes from [`next_wake`](Core::next_wake) —
    /// the typed plan over every wake-up source: the two calendar
    /// queues' heads, the runahead episode end, the allocation stall's
    /// expiry, fetch's own resume time, the policy's quiet horizon, the
    /// interval/snapshot epoch boundaries, the watchdog / deadline trip
    /// points (so errors fire on the identical cycle), and — in
    /// event-driven mode — the memory system's own event horizon. The
    /// event cycle itself is always executed as a real step.
    fn stall_fast_forward(&mut self) {
        if !self.cfg.fast_forward
            || self.cycle_dispatched > 0
            || self.stats.committed_insts >= self.commit_stop
            || self.l2_miss_events != 0
            || !self.ready.is_empty()
            || !(self.blocked_loads.is_empty() || self.issue_quiesced)
            || !self.commit_frozen()
        {
            return;
        }
        let Some(block) = self.cycle_block else {
            return;
        };
        // The resize stage is only inert if this cycle's call was a
        // no-op (a transition chains: the new `current_level` argument
        // voids the policy's quiet promise) and no pending shrink could
        // complete (with occupancies frozen for the whole window, the
        // vacancy check's answer now is its answer throughout).
        if self.level_changed {
            return;
        }
        if self.last_target < self.level {
            let spec = self.cfg.levels[self.level - 1];
            if self.rob.len() <= spec.rob
                && self.iq_occ <= spec.iq
                && self.lsq.occupancy() <= spec.lsq
            {
                return; // the shrink fires next cycle
            }
        }
        let now = self.now;
        let Some(front_quiet) = self.front.quiescent_until(now) else {
            return; // fetch could make progress: never skip
        };
        let policy_quiet = self.policy.quiet_until(now, self.level);
        if policy_quiet <= now + 1 {
            return; // policy did not opt in (or changes next cycle)
        }

        if let Some(cadence) = self.cfg.snapshot_cycles {
            // Snapshot points must land on step boundaries, keyed on the
            // config alone — not on whether a sink is installed — so a
            // snapshotting run and a plain run of the same spec take
            // identical steps. If this very step landed on a cadence
            // point, its snapshot is still pending in `maybe_snapshot`
            // (which runs after the step returns): coasting onward now
            // would leave the boundary unobservable, losing the snapshot
            // and breaking interval-paused execution (`run_to_cycle`).
            // Results are unaffected either way — skips never change
            // what the machine computes — so declining costs only the
            // one coast opportunity.
            if self.stats.cycles.is_multiple_of(cadence) {
                return;
            }
        }
        let (next, source) = self.next_wake(now, block, front_quiet, policy_quiet);
        if next <= now + 1 {
            return;
        }
        self.wake_hist[source.index()] += 1;

        let skipped = next - now - 1;
        self.now += skipped;
        self.ff_cycles += skipped;
        self.stats.cycles += skipped;
        self.stats.level_cycles[self.level] += skipped;
        if self.episode.is_some() {
            self.stats.runahead_cycles += skipped;
        }
        self.stats.cpi_stack[self.level][self.last_bucket as usize] += skipped;
        match block {
            DispatchBlock::Transition => self.stats.stall_transition += skipped,
            DispatchBlock::ShrinkWait => self.stats.stall_shrink_wait += skipped,
            DispatchBlock::RobFull => self.stats.stall_rob_full += skipped,
            DispatchBlock::IqFull => self.stats.stall_iq_full += skipped,
            DispatchBlock::LsqFull => self.stats.stall_lsq_full += skipped,
            DispatchBlock::FetchEmpty => self.stats.stall_fetch_empty += skipped,
        }
    }

    /// The unified wake plan: the earliest future cycle at which any
    /// wake-up source could change the machine's course (or an observer
    /// could next look), typed by which source binds. Both scheduling
    /// modes compute their skip bound here — the stepped fast-forward
    /// and the event-driven loop share one source of truth instead of
    /// each re-scanning the state ad hoc.
    ///
    /// The per-instruction sources are the two calendar queues' heads;
    /// the rest are scalar horizons folded in directly (posting them as
    /// queue entries would mean cancel/reschedule churn every time one
    /// moves, for no gain — the fold *is* the pop). In event-driven mode
    /// the memory system's [`next_event_at`](MemSystem::next_event_at)
    /// contract joins the plan, so in-flight fills the core holds no
    /// completion event for (prefetches, wrong-path orphans) wake the
    /// machine instead of being polled; that bound can only shorten a
    /// skip, which the fast-forward's stats-neutrality makes invisible
    /// in results.
    fn next_wake(
        &self,
        now: Cycle,
        block: DispatchBlock,
        front_quiet: Cycle,
        policy_quiet: Cycle,
    ) -> (Cycle, WakeSource) {
        let mut next = front_quiet;
        let mut source = WakeSource::FrontEnd;
        let mut fold = |t: Cycle, s: WakeSource| {
            if t < next {
                next = t;
                source = s;
            }
        };
        fold(policy_quiet, WakeSource::PolicyQuiet);
        fold(
            self.last_commit_cycle + self.cfg.watchdog_cycles,
            WakeSource::Watchdog,
        );
        fold(self.deadline_at, WakeSource::Deadline);
        if let Some(t) = self.pending_ready.next_time() {
            fold(t, WakeSource::OperandReady);
        }
        if let Some(t) = self.completions.next_time() {
            fold(t, WakeSource::Completion);
        }
        if self.cfg.event_driven {
            if let Some(t) = self.mem.next_event_at(now) {
                fold(t, WakeSource::MemSystem);
            }
        }
        if let Some(ep) = &self.episode {
            fold(ep.end_at, WakeSource::EpisodeEnd);
        }
        if self.alloc_stall_until > now {
            // The block kind flips from Transition to whatever is behind
            // it when the stall expires: re-evaluate there.
            fold(self.alloc_stall_until, WakeSource::AllocStall);
        }
        if block == DispatchBlock::FetchEmpty {
            // A queued-but-undecoded head becoming ready, or recovery
            // ending (which re-buckets FetchEmpty cycles), ends the
            // replay.
            if let Some(t) = self.front.head_ready_at() {
                fold(t, WakeSource::FrontEnd);
            }
            let recovery = self.front.recovery_until();
            if recovery > now {
                fold(recovery, WakeSource::FrontEnd);
            }
        }
        if let Some(epoch) = self.cfg.interval_cycles {
            // Interval samples must be taken by a real step at the
            // boundary (stats.cycles and now advance in lockstep).
            fold(
                now + (epoch - self.stats.cycles % epoch),
                WakeSource::IntervalEpoch,
            );
        }
        if let Some(cadence) = self.cfg.snapshot_cycles {
            fold(
                now + (cadence - self.stats.cycles % cadence),
                WakeSource::SnapshotCadence,
            );
        }
        (next, source)
    }

    /// Cycles elided by the stall fast-forward (0 when disabled) — a
    /// host-performance diagnostic, not part of [`CoreStats`].
    pub fn fast_forwarded_cycles(&self) -> u64 {
        self.ff_cycles
    }

    /// Event-engine telemetry: calendar-queue traffic and the
    /// skipped-versus-stepped cycle split over the core's lifetime
    /// (warm-up included). Host-side diagnostics, deliberately outside
    /// [`CoreStats`] and the snapshot image — like `ff_cycles` — so A/B
    /// runs across scheduling modes stay bit-identical in results.
    pub fn engine_counters(&self) -> EngineCounters {
        EngineCounters {
            events_posted: self.pending_ready.posted() + self.completions.posted(),
            events_popped: self.pending_ready.popped() + self.completions.popped(),
            skipped_cycles: self.ff_cycles,
            stepped_cycles: self.stepped_cycles,
        }
    }

    /// How many coasts each wake-up source ended (indexed by
    /// [`WakeSource::index`]) — host-side telemetry like
    /// [`engine_counters`](Core::engine_counters).
    pub fn wake_histogram(&self) -> &[u64; WakeSource::COUNT] {
        &self.wake_hist
    }

    // ------------------------------------------------------ observability

    /// The CPI-stack accounting pass: charges the cycle that just ran to
    /// exactly one [`CpiBucket`] of the current level's row. One
    /// increment per [`step`](Core::step) makes the conservation
    /// invariant (`Σ cpi_stack == cycles`) structural; this pass only
    /// decides *which* bucket.
    fn account_cycle(&mut self, now: Cycle) {
        let bucket =
            if self.cycle_dispatched > 0 {
                CpiBucket::Base
            } else {
                match self.cycle_block {
                    Some(DispatchBlock::Transition) => CpiBucket::Transition,
                    Some(DispatchBlock::ShrinkWait) => CpiBucket::ShrinkDrain,
                    // A full window resource whose oldest instruction is an
                    // in-flight load is backed up behind the memory system,
                    // whichever capacity happened to fill first.
                    Some(
                        DispatchBlock::RobFull | DispatchBlock::IqFull | DispatchBlock::LsqFull,
                    ) if self.head_blocked_on_memory() => CpiBucket::MemoryStall,
                    Some(DispatchBlock::RobFull) => CpiBucket::RobFull,
                    Some(DispatchBlock::IqFull) => CpiBucket::IqFull,
                    Some(DispatchBlock::LsqFull) => CpiBucket::LsqFull,
                    Some(DispatchBlock::FetchEmpty) if self.front.recovering(now) => {
                        CpiBucket::BranchRecovery
                    }
                    Some(DispatchBlock::FetchEmpty) => CpiBucket::FetchEmpty,
                    // Dispatch always either allocates or names its first
                    // blocker; this arm is unreachable but total.
                    None => CpiBucket::Base,
                }
            };
        self.last_bucket = bucket;
        self.stats.cpi_stack[self.level][bucket as usize] += 1;
    }

    /// Whether the ROB head is an issued, still-incomplete load — the
    /// signature of a window backed up behind the memory system.
    fn head_blocked_on_memory(&self) -> bool {
        self.rob
            .front()
            .is_some_and(|d| d.inst.op == OpClass::Load && d.issued && !d.completed)
    }

    /// Appends an [`IntervalSample`] at each epoch boundary of the
    /// measured-cycle clock (so warm-up resets re-align the series).
    fn collect_interval(&mut self) {
        let Some(epoch) = self.cfg.interval_cycles else {
            return;
        };
        if !self.stats.cycles.is_multiple_of(epoch) {
            return;
        }
        let committed = self.stats.committed_insts - self.interval_last_insts;
        self.interval_last_insts = self.stats.committed_insts;
        let sample = IntervalSample {
            end_cycle: self.stats.cycles,
            committed_insts: committed,
            level: self.level as u32,
            rob_occ: self.rob.len() as u32,
            iq_occ: self.iq_occ as u32,
            lsq_occ: self.lsq.occupancy() as u32,
            outstanding_misses: self.mem.outstanding_misses() as u32,
        };
        self.stats.intervals.push(sample);
    }

    /// Records a trace event when tracing is compiled in *and* enabled
    /// at runtime; otherwise free. Kept as a `#[cfg]`-gated method so
    /// call sites stay single lines.
    #[cfg(feature = "trace")]
    fn trace(&mut self, cycle: Cycle, kind: TraceEventKind) {
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.record(cycle, kind);
        }
    }

    /// Offers an LLC miss to the tracer through its sampling divisor,
    /// stamping the current MSHR occupancy.
    #[cfg(feature = "trace")]
    fn trace_llc_miss(&mut self, cycle: Cycle, pc: Addr, addr: Addr) {
        if let Some(tracer) = self.tracer.as_mut() {
            let occ = self.mem.outstanding_misses() as u32;
            tracer.offer_llc_miss(cycle, pc, addr, occ);
        }
    }

    // ---------------------------------------------------------- accessors

    /// Accumulated statistics (live view).
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The memory hierarchy (for miss histograms, provenance, ...).
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Mutable memory hierarchy access (e.g. to finalize provenance).
    pub fn mem_mut(&mut self) -> &mut MemSystem {
        &mut self.mem
    }

    /// The branch-prediction unit.
    pub fn predictor(&self) -> &BranchPredictor {
        &self.bp
    }

    /// The current resource level (0-based).
    pub fn current_level(&self) -> usize {
        self.level
    }

    /// The current cycle.
    pub fn cycle(&self) -> Cycle {
        self.now
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Whether the core is currently in a runahead episode.
    pub fn in_runahead(&self) -> bool {
        self.episode.is_some()
    }

    /// The structured-event tracer, when one is configured. Only exists
    /// in `trace`-feature builds — a default build carries no tracer
    /// state at all.
    #[cfg(feature = "trace")]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Current (ROB, IQ, LSQ) occupancy — for invariant checks and
    /// occupancy-triggered analyses.
    pub fn occupancy(&self) -> (usize, usize, usize) {
        (self.rob.len(), self.iq_occ, self.lsq.occupancy())
    }

    // ----------------------------------------------------------- snapshot

    /// Encodes the complete dynamic state — architectural and
    /// microarchitectural — into a flat byte image.
    ///
    /// Captured: the cycle clock, ROB/IQ/LSQ contents, rename map, FU
    /// pools, scheduler event wheels, runahead episode and tables, the
    /// front end (including the workload generator's RNG and phase
    /// cursor), branch predictor, memory hierarchy (caches, MSHRs, DRAM
    /// queues), window-policy state, every statistics accumulator, and
    /// the armed deadline/commit-stop of an in-flight `run` call, so a
    /// restored core replays the remaining cycles bit-identically.
    ///
    /// Deliberately *not* captured: the configuration (the restoring
    /// side must rebuild the core from the identical [`CoreConfig`] —
    /// geometry is validated, not transported), the snapshot sink, the
    /// `ff_cycles` host diagnostic, and the `trace`-feature event ring
    /// (observability, not simulated state).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::with_capacity(4096);
        self.save_state(&mut w);
        w.into_bytes()
    }

    /// Restores the state written by [`snapshot`](Core::snapshot) into a
    /// core freshly built from the identical configuration and workload.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the bytes are truncated, corrupt, or
    /// encode a core of different geometry. The core's state is
    /// unspecified after an error: discard it and rebuild.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        self.load_state(&mut r)?;
        r.finish()
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.now);
        w.put_usize(self.level);
        w.put_u64(self.next_dyn);
        w.put_seq(self.rob.iter(), |w, d| d.encode(w));
        w.put_usize(self.iq_occ);
        self.lsq.save_state(w);
        self.rename.save_state(w);
        self.fu.save_state(w);
        // The event wheels travel as sorted (time, seq) pairs — the
        // representation-free form the heap-based scheduler also wrote,
        // so images are interchangeable across scheduler generations.
        let pending = self.pending_ready.sorted_events();
        w.put_seq(pending.iter(), |w, &(t, s)| {
            w.put_u64(t);
            w.put_u64(s);
        });
        self.ready.save_state(w);
        w.put_seq(self.blocked_loads.iter(), |w, &s| w.put_u64(s));
        let completions = self.completions.sorted_events();
        w.put_seq(completions.iter(), |w, &(t, s)| {
            w.put_u64(t);
            w.put_u64(s);
        });
        w.put_u64(self.alloc_stall_until);
        w.put_bool(self.shrink_wait);
        w.put_u32(self.l2_miss_events);
        w.put_bool(self.ra_cache.is_some());
        if let Some(c) = &self.ra_cache {
            c.save_state(w);
        }
        w.put_bool(self.cst.is_some());
        if let Some(c) = &self.cst {
            c.save_state(w);
        }
        w.put_opt(self.episode.as_ref(), |w, e| {
            w.put_u64(e.resume_seq);
            w.put_u64(e.end_at);
            w.put_u64(e.trigger_pc);
            w.put_u32(e.l2_misses);
        });
        for &b in &self.arch_inv {
            w.put_bool(b);
        }
        w.put_opt_u64(self.last_suppressed);
        w.put_usize(self.cycle_dispatched);
        w.put_opt(self.cycle_block.as_ref(), |w, b| w.put_u8(b.tag()));
        w.put_bool(self.issue_quiesced);
        w.put_u8(self.last_bucket as u8);
        w.put_u64(self.deadline_at);
        w.put_u64(self.commit_stop);
        w.put_usize(self.last_target);
        w.put_bool(self.level_changed);
        w.put_u64(self.interval_last_insts);
        self.stats.save_state(w);
        w.put_u64(self.last_commit_cycle);
        w.put_u64(self.total_committed);
        self.mem.save_state(w);
        self.bp.save_state(w);
        self.front.save_state(w);
        self.policy.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.now = r.get_u64()?;
        self.level = r.get_usize()?;
        if self.level >= self.cfg.levels.len() {
            return Err(SnapError::Mismatch {
                what: "window level ladder",
            });
        }
        self.next_dyn = r.get_u64()?;
        let rob = r.get_seq(DynInst::decode)?;
        if rob.len() > self.cfg.max_level_spec().rob {
            return Err(SnapError::Mismatch {
                what: "ROB occupancy vs capacity",
            });
        }
        self.rob.clear();
        self.rob.extend(rob);
        self.iq_occ = r.get_usize()?;
        self.lsq.load_state(r)?;
        self.rename.load_state(r)?;
        self.fu.load_state(r)?;
        // Snapshots are taken at step boundaries, where every queued
        // event is strictly in the future — so the restored wheels'
        // windows start at the cycle after the restored clock. An event
        // at or below the clock means a corrupt image.
        let pending = r.get_seq(|r| Ok((r.get_u64()?, r.get_u64()?)))?;
        if !self.pending_ready.restore(self.now + 1, &pending) {
            return Err(SnapError::Mismatch {
                what: "pending-ready event versus clock",
            });
        }
        self.ready.load_state(r)?;
        let blocked = r.get_u64_vec()?;
        self.blocked_loads.clear();
        self.blocked_loads.extend(blocked);
        let completions = r.get_seq(|r| Ok((r.get_u64()?, r.get_u64()?)))?;
        if !self.completions.restore(self.now + 1, &completions) {
            return Err(SnapError::Mismatch {
                what: "completion event versus clock",
            });
        }
        self.alloc_stall_until = r.get_u64()?;
        self.shrink_wait = r.get_bool()?;
        self.l2_miss_events = r.get_u32()?;
        let has_ra = r.get_bool()?;
        match (&mut self.ra_cache, has_ra) {
            (Some(c), true) => c.load_state(r)?,
            (None, false) => {}
            _ => {
                return Err(SnapError::Mismatch {
                    what: "runahead-cache presence",
                })
            }
        }
        let has_cst = r.get_bool()?;
        match (&mut self.cst, has_cst) {
            (Some(c), true) => c.load_state(r)?,
            (None, false) => {}
            _ => {
                return Err(SnapError::Mismatch {
                    what: "cause-status-table presence",
                })
            }
        }
        self.episode = r.get_opt(|r| {
            Ok(Episode {
                resume_seq: r.get_u64()?,
                end_at: r.get_u64()?,
                trigger_pc: r.get_u64()?,
                l2_misses: r.get_u32()?,
            })
        })?;
        for b in &mut self.arch_inv {
            *b = r.get_bool()?;
        }
        self.last_suppressed = r.get_opt_u64()?;
        self.cycle_dispatched = r.get_usize()?;
        self.cycle_block = r.get_opt(DispatchBlock::from_tag)?;
        self.issue_quiesced = r.get_bool()?;
        self.last_bucket = CpiBucket::from_tag(r)?;
        self.deadline_at = r.get_u64()?;
        self.commit_stop = r.get_u64()?;
        self.last_target = r.get_usize()?;
        self.level_changed = r.get_bool()?;
        self.interval_last_insts = r.get_u64()?;
        self.stats.load_state(r)?;
        self.last_commit_cycle = r.get_u64()?;
        self.total_committed = r.get_u64()?;
        self.mem.load_state(r)?;
        self.bp.load_state(r)?;
        self.front.load_state(r)?;
        self.policy.load_state(r)?;
        Ok(())
    }

    // ------------------------------------------------------------ helpers

    fn rob_idx(&self, seq: DynSeq) -> Option<usize> {
        let front = self.rob.front()?.dyn_seq;
        if seq < front {
            return None;
        }
        let i = (seq - front) as usize;
        if i < self.rob.len() {
            debug_assert_eq!(self.rob[i].dyn_seq, seq);
            Some(i)
        } else {
            None
        }
    }

    fn iq_depth(&self) -> u32 {
        self.cfg.levels[self.level].iq_depth
    }

    fn mispredict_penalty(&self) -> u32 {
        self.cfg.mispredict_penalty + self.cfg.levels[self.level].extra_mispredict_penalty
    }

    /// Announces a producer's result time/validity to its waiters. Safe
    /// to call again with an earlier time (runahead INV override).
    fn notify_waiters(&mut self, producer: DynSeq) {
        let Some(p_idx) = self.rob_idx(producer) else {
            return;
        };
        let value_ready = self.rob[p_idx].value_ready_at;
        let inv = self.rob[p_idx].inv;
        // Take-then-restore instead of cloning: the loop never touches
        // the producer's own waiter list (waiters are only appended at
        // rename), and the list must survive for re-notification.
        let waiters = std::mem::take(&mut self.rob[p_idx].waiters);
        for w in waiters.iter() {
            // One deque indexing per waiter: every field access below
            // goes through this borrow.
            let Some(i) = self.rob_idx(w) else { continue };
            let d = &mut self.rob[i];
            if d.issued {
                continue;
            }
            let mut changed = false;
            for s in 0..2 {
                if d.src_producers[s] == Some(producer) {
                    if d.src_ready[s] == Cycle::MAX {
                        d.unresolved_srcs -= 1;
                    }
                    d.src_ready[s] = value_ready;
                    d.src_inv[s] = inv;
                    changed = true;
                }
            }
            if changed && d.unresolved_srcs == 0 {
                let rt = d.src_ready[0].max(d.src_ready[1]).max(d.fetched_at + 1);
                d.ready_time = rt;
                self.pending_ready.post(rt, w);
            }
        }
        self.rob[p_idx].waiters = waiters;
    }

    // ---------------------------------------------------------- writeback

    fn writeback(&mut self, now: Cycle) {
        while let Some((t, seq)) = self.completions.pop_due(now) {
            let Some(i) = self.rob_idx(seq) else { continue };
            let d = &mut self.rob[i];
            if d.completed || d.complete_at != t {
                continue; // squash-then-reuse or stale event
            }
            d.completed = true;
            if d.is_branch() {
                self.resolve_branch(i, now);
            }
        }
    }

    fn resolve_branch(&mut self, idx: usize, now: Cycle) {
        let d = &self.rob[idx];
        let seq = d.dyn_seq;
        let inv = d.inv;
        let mispredicted = d.mispredicted;
        let trace_seq = d.trace_seq;
        let inst = d.inst.clone();
        let outcome = d.bp_outcome.clone();
        if d.wrong_path {
            return; // wrong-path instructions carry no branches by
                    // construction, but stay safe
        }
        if inv {
            // Runahead: the branch outcome is unknowable in hardware; the
            // pipeline keeps following the prediction. No training, no
            // recovery.
            return;
        }
        if let Some(outcome) = &outcome {
            self.bp.resolve(&inst, outcome);
        }
        if mispredicted {
            self.stats.squashes += 1;
            #[cfg(feature = "trace")]
            self.trace(now, TraceEventKind::Squash { at_seq: seq });
            self.squash_younger(seq);
            let resume = trace_seq.expect("correct-path branch has a trace seq") + 1;
            self.front
                .redirect(resume, now + self.mispredict_penalty() as Cycle);
        }
    }

    fn squash_younger(&mut self, seq: DynSeq) {
        while self.rob.back().is_some_and(|d| d.dyn_seq > seq) {
            let d = self.rob.pop_back().expect("checked non-empty");
            if let Some((reg, prev)) = d.prev_map {
                self.rename.rollback(reg, prev);
            }
            if d.in_iq {
                self.iq_occ -= 1;
            }
        }
        self.lsq.squash_younger(seq);
        while self.blocked_loads.back().is_some_and(|&s| s > seq) {
            self.blocked_loads.pop_back();
        }
        // Clear ready bits above the squash point by walking the ring
        // over the (about-to-be-recycled) younger window.
        let mut s = seq + 1;
        while let Some(r) = self.ready.next_at_or_after(s, self.next_dyn) {
            self.ready.remove(r);
            s = r + 1;
        }
        // Reuse the squashed sequence numbers so ROB dyn_seqs stay
        // contiguous (rob_idx relies on it). Stale heap entries naming a
        // reused seq are filtered: completions check complete_at and
        // pending_ready checks ready_time against the live instruction.
        self.next_dyn = seq + 1;
    }

    // ------------------------------------------------------------- commit

    fn commit(&mut self, now: Cycle) {
        // Test-only fault injection: simulate the modelling bugs the
        // harness must survive. A frozen commit stage livelocks the core
        // (the watchdog's job to catch); a panic models a crash.
        if let Some(fault) = &self.cfg.fault {
            if let Some(at) = fault.panic_after {
                if self.total_committed >= at {
                    panic!(
                        "injected core fault: panic after {at} committed instructions \
                         (cycle {now})"
                    );
                }
            }
            if fault
                .freeze_commit_after
                .is_some_and(|at| self.total_committed >= at)
            {
                return;
            }
        }
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else { break };
            let in_runahead = self.episode.is_some();
            if head.completed {
                self.retire_head(now, in_runahead);
                continue;
            }
            // Head not complete: runahead entry/pseudo-retire decisions.
            let head_blocked_l2_load = head.inst.op == OpClass::Load && head.issued && head.l2_miss;
            if in_runahead {
                if head_blocked_l2_load {
                    // Pseudo-retire the miss with an INV result.
                    let seq = head.dyn_seq;
                    self.force_inv(seq, now);
                    self.retire_head(now, true);
                    continue;
                }
                break;
            }
            if self.cfg.runahead.is_some() && head_blocked_l2_load && !head.wrong_path {
                let pc = head.inst.pc;
                let seq = head.dyn_seq;
                let opts = self.cfg.runahead.as_ref().expect("checked is_some");
                // A nearly-resolved miss cannot buy a useful episode
                // (ISCA 2005 efficiency technique): stall normally.
                let remaining = head.value_ready_at.saturating_sub(now);
                if remaining < opts.min_entry_remaining as Cycle {
                    if self.last_suppressed != Some(seq) {
                        self.last_suppressed = Some(seq);
                        self.stats.runahead_short_skips += 1;
                    }
                    break;
                }
                let useful = self.cst.as_ref().is_none_or(|c| c.predict_useful(pc));
                if useful {
                    self.enter_runahead(now);
                    self.retire_head(now, true);
                    continue;
                } else if self.last_suppressed != Some(seq) {
                    self.last_suppressed = Some(seq);
                    self.stats.runahead_suppressed += 1;
                }
            }
            break;
        }
    }

    fn retire_head(&mut self, now: Cycle, in_runahead: bool) {
        let d = self.rob.pop_front().expect("retire from empty ROB");
        if d.in_iq {
            self.iq_occ -= 1;
        }
        if let Some(dest) = d.inst.dest {
            self.rename.commit(dest, d.dyn_seq);
        }
        if d.is_mem() {
            self.lsq.commit(d.dyn_seq);
        }
        // The head is the oldest live seq, so it can only sit at the
        // front of the (age-sorted) blocked deque.
        if self.blocked_loads.front() == Some(&d.dyn_seq) {
            self.blocked_loads.pop_front();
        }
        self.ready.remove(d.dyn_seq);

        if in_runahead {
            // Pseudo-retirement: results go nowhere architectural; stores
            // feed the runahead cache so younger runahead loads can
            // forward.
            if let Some(dest) = d.inst.dest {
                self.arch_inv[dest.index()] = d.inv;
            }
            if d.inst.op == OpClass::Store {
                let inv = d.inv;
                if let (Some(cache), Some(m)) = (self.ra_cache.as_mut(), &d.inst.mem) {
                    cache.write(m.addr, inv);
                }
            }
            return;
        }

        debug_assert!(!d.wrong_path, "wrong-path instruction reached commit");
        self.last_commit_cycle = now;
        self.stats.committed_insts += 1;
        self.total_committed += 1;
        if let Some(dest) = d.inst.dest {
            self.arch_inv[dest.index()] = false;
        }
        match d.inst.op {
            OpClass::Load => {
                self.stats.committed_loads += 1;
                // Effective latency: from issue (entering the memory
                // system or the blocked-behind-a-store wait) to data
                // availability — what Table 3 reports.
                self.stats.load_latency_sum += d.value_ready_at.saturating_sub(d.issued_at);
            }
            OpClass::Store => {
                self.stats.committed_stores += 1;
                // The store retires to the cache hierarchy now.
                if let Some(m) = &d.inst.mem {
                    let r = self.mem.access(
                        AccessKind::Store,
                        d.inst.pc,
                        m.addr,
                        now,
                        PathKind::Correct,
                    );
                    if r.l2_demand_miss {
                        self.l2_miss_events += 1;
                        #[cfg(feature = "trace")]
                        self.trace_llc_miss(now, d.inst.pc, m.addr);
                    }
                }
            }
            OpClass::CondBranch | OpClass::Jump => {
                self.stats.committed_branches += 1;
                if d.inst.op == OpClass::CondBranch {
                    self.stats.committed_cond_branches += 1;
                }
                if d.mispredicted {
                    self.stats.committed_mispredicts += 1;
                }
            }
            _ => {}
        }
        if let Some(ts) = d.trace_seq {
            self.front.retire_below(ts + 1);
        }
    }

    // ----------------------------------------------------------- runahead

    fn enter_runahead(&mut self, now: Cycle) {
        let head = self.rob.front().expect("trigger requires a head");
        let resume_seq = head
            .trace_seq
            .expect("runahead triggers on correct-path loads");
        let end_at = head.value_ready_at.max(now + 1);
        let trigger_pc = head.inst.pc;
        let seq = head.dyn_seq;
        self.episode = Some(Episode {
            resume_seq,
            end_at,
            trigger_pc,
            l2_misses: 0,
        });
        self.stats.runahead_episodes += 1;
        self.force_inv(seq, now);
        #[cfg(feature = "trace")]
        self.trace(now, TraceEventKind::RunaheadEnter { trigger_pc });
    }

    /// Marks an instruction's result INV and available immediately,
    /// re-notifying dependents that were promised a later time.
    fn force_inv(&mut self, seq: DynSeq, now: Cycle) {
        let Some(i) = self.rob_idx(seq) else { return };
        self.rob[i].inv = true;
        self.rob[i].value_ready_at = now + 1;
        self.rob[i].completed = true;
        self.rob[i].complete_at = now;
        self.notify_waiters(seq);
    }

    fn exit_runahead(&mut self, now: Cycle) {
        let ep = self.episode.take().expect("exit requires an episode");
        // Squash the entire speculative window back to the checkpoint.
        self.rob.clear();
        self.iq_occ = 0;
        self.lsq.clear();
        self.blocked_loads.clear();
        self.ready.clear();
        self.pending_ready.clear();
        self.completions.clear();
        self.fu.flush();
        self.rename = RenameMap::new();
        self.arch_inv = [false; 64];
        if let Some(cache) = self.ra_cache.as_mut() {
            cache.clear();
        }
        let threshold = self
            .cfg
            .runahead
            .as_ref()
            .map_or(1, |o| o.cst_useful_threshold);
        let useful = ep.l2_misses >= threshold;
        if useful {
            self.stats.runahead_useful_episodes += 1;
        }
        if let Some(cst) = self.cst.as_mut() {
            cst.update(ep.trigger_pc, useful);
        }
        #[cfg(feature = "trace")]
        self.trace(
            now,
            TraceEventKind::RunaheadExit {
                l2_misses: ep.l2_misses,
                useful,
            },
        );
        // Resume from the checkpoint; the paper assumes no extra penalty
        // for the mode switch.
        self.front.redirect(ep.resume_seq, now);
    }

    // ------------------------------------------------------------- resize

    fn resize(&mut self, now: Cycle) {
        self.shrink_wait = false;
        let old_level = self.level;
        let misses = std::mem::take(&mut self.l2_miss_events);
        let max = self.cfg.levels.len() - 1;
        let target = self
            .policy
            .target_level(now, misses, self.level, max)
            .min(max);
        self.last_target = target;
        if target > self.level {
            let old = self.level;
            self.level = target;
            self.alloc_stall_until = self
                .alloc_stall_until
                .max(now + self.cfg.transition_penalty as Cycle);
            self.stats.transitions_up += 1;
            self.policy.on_transition(now, old, self.level);
            #[cfg(feature = "trace")]
            self.trace(
                now,
                TraceEventKind::LevelUp {
                    from: old,
                    to: self.level,
                    penalty: self.cfg.transition_penalty,
                },
            );
        } else if target < self.level {
            // Shrink one level per decision, only once the doomed regions
            // of ROB, IQ and LSQ are simultaneously vacant.
            let new_level = self.level - 1;
            let spec = self.cfg.levels[new_level];
            if self.rob.len() <= spec.rob
                && self.iq_occ <= spec.iq
                && self.lsq.occupancy() <= spec.lsq
            {
                let old = self.level;
                self.level = new_level;
                self.alloc_stall_until = self
                    .alloc_stall_until
                    .max(now + self.cfg.transition_penalty as Cycle);
                self.stats.transitions_down += 1;
                self.policy.on_transition(now, old, self.level);
                #[cfg(feature = "trace")]
                self.trace(
                    now,
                    TraceEventKind::LevelDown {
                        from: old,
                        to: self.level,
                        penalty: self.cfg.transition_penalty,
                    },
                );
            } else {
                self.shrink_wait = true;
            }
        }
        self.level_changed = self.level != old_level;
    }

    // -------------------------------------------------------------- issue

    fn issue(&mut self, now: Cycle) {
        // Until an event below proves otherwise, nothing this cycle
        // could change a blocked load's outcome on the next retry.
        self.issue_quiesced = true;

        // Promote instructions whose operands have arrived.
        while let Some((t, seq)) = self.pending_ready.pop_due(now) {
            if let Some(i) = self.rob_idx(seq) {
                let d = &self.rob[i];
                if !d.issued && d.unresolved_srcs == 0 && d.ready_time == t {
                    self.ready.insert(seq);
                }
            }
        }

        // Retry loads blocked behind stores (oldest first); they consume
        // a cache port but not issue-queue bandwidth. Rotating the deque
        // once processes every entry and preserves the age order with no
        // allocation or re-sort.
        for _ in 0..self.blocked_loads.len() {
            let seq = self.blocked_loads.pop_front().expect("len-bounded pop");
            let Some(i) = self.rob_idx(seq) else { continue };
            let m = self.rob[i].inst.mem.expect("blocked entry is a load");
            match self.lsq.check_load(seq, &m) {
                LoadCheck::Blocked => self.blocked_loads.push_back(seq),
                check => {
                    if self.fu.can_issue(OpClass::Load) {
                        self.fu.issue(OpClass::Load, now, 1);
                        self.perform_load(seq, now, check);
                    } else {
                        // Port-starved: the ports reset next cycle, so
                        // this load is issuable then.
                        self.blocked_loads.push_back(seq);
                        self.issue_quiesced = false;
                    }
                }
            }
        }

        // Select up to issue_width ready instructions, oldest first, by
        // walking the ready ring in place from the ROB head. The loop
        // body only ever clears bits at or behind the cursor, so the
        // walk sees exactly the set as it stood at loop entry.
        let mut issued = 0;
        let end = self.next_dyn;
        let mut cursor = self.rob.front().map_or(end, |d| d.dyn_seq);
        while issued < self.cfg.issue_width {
            let Some(seq) = self.ready.next_at_or_after(cursor, end) else {
                break;
            };
            cursor = seq + 1;
            let Some(i) = self.rob_idx(seq) else {
                self.ready.remove(seq);
                continue;
            };
            if self.rob[i].issued {
                self.ready.remove(seq);
                continue;
            }
            let op = self.rob[i].inst.op;
            match op {
                OpClass::Load => {
                    let m = self.rob[i].inst.mem.expect("load has a memref");
                    let base_inv = self.rob[i].src_inv[0] || self.rob[i].src_inv[1];
                    if base_inv {
                        // INV address: the load produces INV without
                        // touching memory (runahead semantics).
                        self.ready.remove(seq);
                        self.mark_issued(seq, now);
                        self.lsq.mark_issued(seq);
                        let depth = self.iq_depth();
                        let d = &mut self.rob[i];
                        d.inv = true;
                        d.mem_state = MemState::Issued;
                        d.value_ready_at = now + depth.max(2) as Cycle;
                        d.complete_at = d.value_ready_at;
                        self.completions.post(now + depth.max(2) as Cycle, seq);
                        self.notify_waiters(seq);
                        issued += 1;
                        continue;
                    }
                    match self.lsq.check_load(seq, &m) {
                        LoadCheck::Blocked => {
                            self.ready.remove(seq);
                            self.mark_issued(seq, now);
                            self.rob[i].mem_state = MemState::Blocked;
                            // Sorted insert (usually at the back: the
                            // walk hands out seqs oldest-first, but a
                            // late-arriving operand can make an old load
                            // ready after younger ones blocked).
                            let pos = self.blocked_loads.partition_point(|&s| s < seq);
                            self.blocked_loads.insert(pos, seq);
                            // No FU consumed; no issue-slot charged.
                        }
                        check => {
                            if !self.fu.can_issue(op) {
                                continue;
                            }
                            self.fu.issue(op, now, 1);
                            self.ready.remove(seq);
                            self.perform_load(seq, now, check);
                            issued += 1;
                        }
                    }
                }
                OpClass::Store => {
                    if !self.fu.can_issue(op) {
                        continue;
                    }
                    self.fu.issue(op, now, 1);
                    self.ready.remove(seq);
                    self.mark_issued(seq, now);
                    self.lsq.mark_issued(seq);
                    // An executed store can unblock a waiting load on
                    // the very next retry.
                    self.issue_quiesced = false;
                    let d = &mut self.rob[i];
                    d.inv = d.src_inv[0] || d.src_inv[1];
                    d.mem_state = MemState::Issued;
                    d.complete_at = now + 1;
                    self.completions.post(now + 1, seq);
                    issued += 1;
                }
                _ => {
                    if !self.fu.can_issue(op) {
                        continue;
                    }
                    let latency = op.exec_latency();
                    self.fu.issue(op, now, latency);
                    self.ready.remove(seq);
                    self.mark_issued(seq, now);
                    let depth = self.iq_depth();
                    let d = &mut self.rob[i];
                    d.inv = d.src_inv[0] || d.src_inv[1];
                    d.value_ready_at = now + latency.max(depth) as Cycle;
                    d.complete_at = now + latency as Cycle;
                    self.completions.post(now + latency as Cycle, seq);
                    self.notify_waiters(seq);
                    issued += 1;
                }
            }
        }
    }

    fn mark_issued(&mut self, seq: DynSeq, now: Cycle) {
        self.stats.issued_total += 1;
        let i = self.rob_idx(seq).expect("issuing a live instruction");
        let d = &mut self.rob[i];
        debug_assert!(!d.issued);
        d.issued = true;
        d.issued_at = now;
        if d.in_iq {
            d.in_iq = false;
            self.iq_occ -= 1;
        }
    }

    /// Executes a load whose disambiguation check allowed it to proceed.
    fn perform_load(&mut self, seq: DynSeq, now: Cycle, check: LoadCheck) {
        let i = self.rob_idx(seq).expect("load is live");
        let m = self.rob[i].inst.mem.expect("load has a memref");
        let pc = self.rob[i].inst.pc;
        let wrong_path = self.rob[i].wrong_path;
        let depth = self.iq_depth() as Cycle;
        let in_runahead = self.episode.is_some();
        let l1_hit = self.cfg.memory.l1d.hit_latency as Cycle;

        let (value_ready, inv, mem_latency, l2_miss) = match check {
            LoadCheck::Forward(store_seq) => {
                let store_inv = self
                    .rob_idx(store_seq)
                    .map(|si| self.rob[si].inv)
                    .unwrap_or(false);
                (now + l1_hit.max(depth), store_inv, l1_hit as u32, false)
            }
            LoadCheck::Access => {
                // Runahead loads may forward from pseudo-retired stores.
                if in_runahead {
                    let lookup = self
                        .ra_cache
                        .as_mut()
                        .map(|c| c.lookup(m.addr))
                        .unwrap_or(RaLookup::Miss);
                    match lookup {
                        RaLookup::Valid => (now + l1_hit.max(depth), false, l1_hit as u32, false),
                        RaLookup::Inv => (now + l1_hit.max(depth), true, l1_hit as u32, false),
                        RaLookup::Miss => self.load_from_memory(pc, m.addr, now, wrong_path),
                    }
                } else {
                    self.load_from_memory(pc, m.addr, now, wrong_path)
                }
            }
            LoadCheck::Blocked => unreachable!("caller filtered blocked loads"),
        };

        // In runahead mode an L2 miss yields INV immediately — the memory
        // request stays in flight (that is the prefetching benefit), but
        // dependents proceed with an invalid value.
        let (value_ready, inv) = if in_runahead && l2_miss {
            (now + l1_hit.max(depth), true)
        } else {
            (value_ready, inv)
        };

        self.lsq.mark_issued(seq);
        if !self.rob[i].issued {
            self.mark_issued(seq, now);
        }
        let d = &mut self.rob[i];
        d.mem_state = MemState::Issued;
        d.mem_latency = mem_latency;
        d.l2_miss = l2_miss;
        d.inv = inv || d.src_inv[0] || d.src_inv[1];
        d.value_ready_at = value_ready.max(now + depth);
        d.complete_at = d.value_ready_at;
        let complete_at = d.complete_at;
        self.completions.post(complete_at, seq);
        self.notify_waiters(seq);
    }

    fn load_from_memory(
        &mut self,
        pc: Addr,
        addr: Addr,
        now: Cycle,
        wrong_path: bool,
    ) -> (Cycle, bool, u32, bool) {
        let in_runahead = self.episode.is_some();
        let path = if wrong_path || in_runahead {
            PathKind::Wrong
        } else {
            PathKind::Correct
        };
        let r = self.mem.access(AccessKind::Load, pc, addr, now + 1, path);
        if r.l2_demand_miss {
            self.l2_miss_events += 1;
            if let Some(ep) = self.episode.as_mut() {
                ep.l2_misses += 1;
            }
            #[cfg(feature = "trace")]
            self.trace_llc_miss(now, pc, addr);
        }
        (r.ready_at, false, r.latency, !r.l2_or_better)
    }

    // ----------------------------------------------------------- dispatch

    fn dispatch(&mut self, now: Cycle) {
        self.cycle_dispatched = 0;
        self.cycle_block = None;
        if now < self.alloc_stall_until {
            self.stats.stall_transition += 1;
            self.cycle_block = Some(DispatchBlock::Transition);
            return;
        }
        if self.shrink_wait {
            self.stats.stall_shrink_wait += 1;
            self.cycle_block = Some(DispatchBlock::ShrinkWait);
            return;
        }
        let spec = self.cfg.levels[self.level];
        for slot in 0..self.cfg.fetch_width {
            if self.rob.len() >= spec.rob {
                if slot == 0 {
                    self.stats.stall_rob_full += 1;
                    self.cycle_block = Some(DispatchBlock::RobFull);
                }
                break;
            }
            if self.iq_occ >= spec.iq {
                if slot == 0 {
                    self.stats.stall_iq_full += 1;
                    self.cycle_block = Some(DispatchBlock::IqFull);
                }
                break;
            }
            // Peek before popping: LSQ capacity only gates memory ops.
            let needs_lsq = {
                let Some(peek) = self.front_peek_ready(now) else {
                    if slot == 0 {
                        self.stats.stall_fetch_empty += 1;
                        self.cycle_block = Some(DispatchBlock::FetchEmpty);
                    }
                    break;
                };
                peek
            };
            if needs_lsq && self.lsq.occupancy() >= spec.lsq {
                if slot == 0 {
                    self.stats.stall_lsq_full += 1;
                    self.cycle_block = Some(DispatchBlock::LsqFull);
                }
                break;
            }
            let fetched = self
                .front
                .pop_ready(now)
                .expect("peeked entry must still be there");
            self.rename_and_insert(fetched, now);
            self.cycle_dispatched += 1;
        }
    }

    fn front_peek_ready(&mut self, now: Cycle) -> Option<bool> {
        self.front.peek_ready(now).map(|f| f.inst.op.is_mem())
    }

    fn rename_and_insert(&mut self, fetched: FetchedInst, now: Cycle) {
        let seq = self.next_dyn;
        self.next_dyn += 1;
        let mut d = DynInst::new(
            seq,
            fetched.trace_seq,
            fetched.inst,
            fetched.wrong_path,
            fetched.fetched_at,
        );
        d.bp_outcome = fetched.bp_outcome;
        d.mispredicted = d
            .bp_outcome
            .as_ref()
            .map(|o| o.mispredicted)
            .unwrap_or(false);
        self.stats.dispatched_total += 1;
        if d.wrong_path {
            self.stats.wrongpath_dispatched += 1;
        }

        // Rename sources.
        let srcs = d.inst.srcs;
        for (s, src) in srcs.iter().enumerate() {
            let Some(reg) = src else { continue };
            match self.rename.producer(*reg) {
                None => {
                    d.src_ready[s] = 0;
                    d.src_inv[s] = self.arch_inv[reg.index()];
                }
                Some(p) => {
                    d.src_producers[s] = Some(p);
                    match self.rob_idx(p) {
                        Some(pi) if self.rob[pi].value_ready_at != Cycle::MAX => {
                            d.src_ready[s] = self.rob[pi].value_ready_at;
                            d.src_inv[s] = self.rob[pi].inv;
                            // Still register as a waiter: a runahead
                            // force-INV can lower the producer's ready
                            // time after the fact, and the re-notification
                            // must reach direct readers too.
                            self.rob[pi].waiters.push(seq);
                        }
                        Some(pi) => {
                            d.src_ready[s] = Cycle::MAX;
                            d.unresolved_srcs += 1;
                            self.rob[pi].waiters.push(seq);
                        }
                        None => {
                            // Producer left the ROB between map update and
                            // commit-clear: value is architectural.
                            d.src_ready[s] = 0;
                        }
                    }
                }
            }
        }

        // Rename destination.
        if let Some(dest) = d.inst.dest {
            let prev = self.rename.define(dest, seq);
            d.prev_map = Some((dest.index(), prev));
        }

        // Enter the window resources.
        d.in_iq = true;
        self.iq_occ += 1;
        if let Some(m) = d.inst.mem {
            self.lsq.allocate(seq, d.inst.op == OpClass::Store, m);
        }
        if d.unresolved_srcs == 0 {
            let rt = d.src_ready[0].max(d.src_ready[1]).max(now + 1);
            d.ready_time = rt;
            self.pending_ready.post(rt, seq);
        }
        self.rob.push_back(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LevelSpec;
    use crate::policy::FixedLevelPolicy;
    use mlpwin_workloads::profiles;

    fn run_profile(name: &str, cfg: CoreConfig, level: usize, insts: u64) -> CoreStats {
        let w = profiles::by_name(name, 7).expect("profile");
        let mut core = Core::new(cfg, w, Box::new(FixedLevelPolicy::new(level)));
        core.run_warmup(30_000).expect("warm-up must not stall");
        core.run(insts).expect("healthy profile must not stall")
    }

    #[test]
    fn base_core_commits_and_reports_sane_ipc() {
        let s = run_profile("gcc", CoreConfig::default(), 0, 10_000);
        // Commit is up to 4-wide, so the run may overshoot by a group.
        assert!(s.committed_insts >= 10_000 && s.committed_insts < 10_004);
        assert!(s.ipc() > 0.8, "compute workload too slow: {}", s.ipc());
        assert!(s.ipc() <= 4.0, "cannot exceed machine width");
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run_profile("soplex", CoreConfig::default(), 0, 3_000);
        let b = run_profile("soplex", CoreConfig::default(), 0, 3_000);
        assert_eq!(a, b);
    }

    #[test]
    fn memory_intensive_profile_gains_from_level3() {
        let base = run_profile("libquantum", CoreConfig::default(), 0, 8_000);
        let big = run_profile("libquantum", CoreConfig::with_table2_levels(), 2, 8_000);
        assert!(
            big.ipc() > base.ipc() * 1.1,
            "large window should help libquantum: base {} vs L3 {}",
            base.ipc(),
            big.ipc()
        );
    }

    #[test]
    fn compute_profile_loses_from_pipelined_window() {
        // A serial-dependence compute workload issues back-to-back at
        // depth 1; depth 2 halves its dependent-issue rate.
        let l1 = run_profile("sjeng", CoreConfig::default(), 0, 10_000);
        let l3 = run_profile("sjeng", CoreConfig::with_table2_levels(), 2, 10_000);
        assert!(
            l3.ipc() < l1.ipc(),
            "pipelining should hurt sjeng: L1 {} vs L3 {}",
            l1.ipc(),
            l3.ipc()
        );
    }

    #[test]
    fn ideal_large_window_never_loses_to_pipelined_large_window() {
        let mut ideal_cfg = CoreConfig::with_table2_levels();
        ideal_cfg.levels = ideal_cfg
            .levels
            .into_iter()
            .map(LevelSpec::idealized)
            .collect();
        let ideal = run_profile("gobmk", ideal_cfg, 2, 10_000);
        let piped = run_profile("gobmk", CoreConfig::with_table2_levels(), 2, 10_000);
        assert!(
            ideal.ipc() >= piped.ipc() * 0.999,
            "ideal {} must not lose to pipelined {}",
            ideal.ipc(),
            piped.ipc()
        );
    }

    #[test]
    fn branches_resolve_and_train() {
        let s = run_profile("gobmk", CoreConfig::default(), 0, 20_000);
        assert!(s.committed_cond_branches > 1_000);
        assert!(s.committed_mispredicts > 0, "gobmk must mispredict");
        let dist = s.mispredict_distance();
        assert!(
            (20.0..3000.0).contains(&dist),
            "gobmk mispredict distance {dist} out of plausible range"
        );
    }

    #[test]
    fn loads_and_stores_commit() {
        let s = run_profile("mcf", CoreConfig::default(), 0, 5_000);
        assert!(s.committed_loads > 500);
        assert!(s.committed_stores > 50);
        assert!(s.avg_load_latency() > 10.0, "mcf is memory-intensive");
    }

    #[test]
    fn level_residency_sums_to_one() {
        let s = run_profile("gcc", CoreConfig::with_table2_levels(), 1, 5_000);
        let total: u64 = s.level_cycles.iter().sum();
        assert_eq!(total, s.cycles);
        assert_eq!(s.level_cycles[1], s.cycles, "fixed level 2");
    }

    #[test]
    fn wrong_path_instructions_never_commit() {
        let s = run_profile("gobmk", CoreConfig::default(), 0, 10_000);
        assert!(
            s.wrongpath_dispatched > 0,
            "mispredictions fetch wrong path"
        );
        assert!(s.committed_insts >= 10_000);
    }

    #[test]
    fn runahead_core_enters_and_exits_episodes() {
        let cfg = CoreConfig {
            runahead: Some(crate::config::RunaheadOpts::default()),
            ..CoreConfig::default()
        };
        let s = run_profile("libquantum", cfg, 0, 8_000);
        assert!(s.runahead_episodes > 0, "memory-bound profile must trigger");
        assert!(s.runahead_cycles > 0);
        assert!(s.committed_insts >= 8_000, "checkpoint restore must work");
    }

    #[test]
    fn frozen_commit_trips_the_watchdog_with_a_snapshot() {
        let cfg = CoreConfig {
            watchdog_cycles: 2_000, // keep the test fast
            fault: Some(crate::config::FaultInjection {
                freeze_commit_after: Some(500),
                panic_after: None,
            }),
            ..CoreConfig::default()
        };
        let w = profiles::by_name("gcc", 7).expect("profile");
        let mut core = Core::new(cfg, w, Box::new(FixedLevelPolicy::new(0)));
        let err = core.run(5_000).expect_err("frozen commit must stall");
        match &err {
            PipelineError::Stall { budget, snapshot } => {
                assert_eq!(*budget, 2_000);
                assert!(snapshot.stalled_for >= 2_000);
                assert!(snapshot.committed_insts >= 500);
                assert!(snapshot.cycle > 0);
                // A frozen commit backs the window up: the ROB holds
                // instructions and its head is renderable.
                assert!(snapshot.rob_len > 0);
                assert!(snapshot.rob_head.is_some());
            }
            other => panic!("expected Stall, got {other:?}"),
        }
    }

    #[test]
    fn deadline_fires_while_still_making_progress() {
        let cfg = CoreConfig {
            deadline_cycles: Some(1_000),
            ..CoreConfig::default()
        };
        let w = profiles::by_name("mcf", 7).expect("profile");
        let mut core = Core::new(cfg, w, Box::new(FixedLevelPolicy::new(0)));
        // mcf cannot retire 10M instructions in 1k cycles.
        let err = core.run(10_000_000).expect_err("deadline must fire");
        match &err {
            PipelineError::DeadlineExceeded { limit, snapshot } => {
                assert_eq!(*limit, 1_000);
                assert!(snapshot.committed_insts < 10_000_000);
                assert!(snapshot.stalled_for < 1_000, "still progressing");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn injected_panic_counts_lifetime_commits_across_warmup() {
        let cfg = CoreConfig {
            fault: Some(crate::config::FaultInjection {
                freeze_commit_after: None,
                panic_after: Some(1_000),
            }),
            ..CoreConfig::default()
        };
        let w = profiles::by_name("gcc", 7).expect("profile");
        let mut core = Core::new(cfg, w, Box::new(FixedLevelPolicy::new(0)));
        // The trigger lands inside warm-up: reset_counters must not
        // restart the fault countdown.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            core.run_warmup(700).expect("below trigger");
            core.run_warmup(700).expect("crosses trigger")
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("injected core fault"), "{msg}");
    }

    type TakenSnapshots = std::rc::Rc<std::cell::RefCell<Vec<(Cycle, Vec<u8>)>>>;

    fn capture_snapshots(
        cfg: &CoreConfig,
        profile: &str,
        level: usize,
        insts: u64,
    ) -> (CoreStats, TakenSnapshots) {
        let w = profiles::by_name(profile, 7).expect("profile");
        let mut core = Core::new(cfg.clone(), w, Box::new(FixedLevelPolicy::new(level)));
        let taken = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let sink = std::rc::Rc::clone(&taken);
        core.set_snapshot_sink(Box::new(move |cycle, bytes| {
            sink.borrow_mut().push((cycle, bytes.to_vec()));
        }));
        let stats = core.run(insts).expect("healthy profile must not stall");
        (stats, taken)
    }

    #[test]
    fn snapshot_resume_is_bit_identical_mid_measurement() {
        let cfg = CoreConfig {
            snapshot_cycles: Some(1_000),
            interval_cycles: Some(500),
            ..CoreConfig::default()
        };
        let (reference, taken) = capture_snapshots(&cfg, "mcf", 0, 6_000);
        let taken = taken.borrow();
        assert!(
            taken.len() >= 2,
            "cadence must fire: {} snapshots",
            taken.len()
        );
        // Resume from a mid-run image (not the last): a real crash loses
        // the tail of the run.
        let (at, bytes) = &taken[taken.len() / 2];
        let w = profiles::by_name("mcf", 7).expect("profile");
        let mut core = Core::new(cfg, w, Box::new(FixedLevelPolicy::new(0)));
        core.restore(bytes).expect("restore must succeed");
        assert_eq!(core.cycle(), *at);
        let resumed = core.resume_run().expect("resumed run must finish");
        assert_eq!(resumed, reference, "resume must be bit-identical");
    }

    #[test]
    fn snapshot_resume_is_bit_identical_with_runahead_and_dynamic_state() {
        let cfg = CoreConfig {
            runahead: Some(crate::config::RunaheadOpts::default()),
            snapshot_cycles: Some(1_500),
            interval_cycles: Some(1_000),
            ..CoreConfig::with_table2_levels()
        };
        let (reference, taken) = capture_snapshots(&cfg, "libquantum", 2, 8_000);
        let taken = taken.borrow();
        assert!(!taken.is_empty(), "cadence must fire");
        let (_, bytes) = taken.last().expect("non-empty");
        let w = profiles::by_name("libquantum", 7).expect("profile");
        let mut core = Core::new(cfg, w, Box::new(FixedLevelPolicy::new(2)));
        core.restore(bytes).expect("restore must succeed");
        let resumed = core.resume_run().expect("resumed run must finish");
        assert_eq!(resumed, reference, "resume must be bit-identical");
    }

    #[test]
    fn snapshot_resume_spans_warmup_reset() {
        let cfg = CoreConfig {
            snapshot_cycles: Some(700),
            ..CoreConfig::default()
        };
        let w = profiles::by_name("gcc", 7).expect("profile");
        let mut core = Core::new(cfg.clone(), w, Box::new(FixedLevelPolicy::new(0)));
        let taken = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let sink = std::rc::Rc::clone(&taken);
        core.set_snapshot_sink(Box::new(move |cycle, bytes| {
            sink.borrow_mut().push((cycle, bytes.to_vec()));
        }));
        core.run_warmup(3_000).expect("warm-up must not stall");
        let warmup_images = taken.borrow().len();
        assert!(warmup_images >= 1, "cadence must fire inside warm-up");
        let reference = core.run(4_000).expect("measurement must not stall");

        // Die inside warm-up, come back, finish warm-up, then measure.
        let (_, bytes) = taken.borrow()[warmup_images - 1].clone();
        let w = profiles::by_name("gcc", 7).expect("profile");
        let mut core = Core::new(cfg, w, Box::new(FixedLevelPolicy::new(0)));
        core.restore(&bytes).expect("restore must succeed");
        core.resume_warmup().expect("resumed warm-up must finish");
        let resumed = core.run(4_000).expect("measurement must not stall");
        assert_eq!(resumed, reference, "warm-up resume must be bit-identical");
    }

    #[test]
    fn snapshot_cadence_does_not_perturb_the_simulation() {
        // Same spec with and without a sink installed (and with the
        // cadence knob off entirely): identical results. The FF pin is
        // keyed on the config, so the knob itself may legally shift
        // nothing but host-side work.
        let cfg = CoreConfig {
            snapshot_cycles: Some(1_000),
            ..CoreConfig::default()
        };
        let (with_sink, _) = capture_snapshots(&cfg, "soplex", 0, 5_000);
        let w = profiles::by_name("soplex", 7).expect("profile");
        let mut plain = Core::new(cfg, w, Box::new(FixedLevelPolicy::new(0)));
        let without_sink = plain.run(5_000).expect("healthy profile must not stall");
        assert_eq!(with_sink, without_sink);
    }

    #[test]
    fn restore_rejects_truncated_trailing_and_mismatched_images() {
        let cfg = CoreConfig {
            snapshot_cycles: Some(1_000),
            ..CoreConfig::default()
        };
        let (_, taken) = capture_snapshots(&cfg, "gcc", 0, 4_000);
        let bytes = taken.borrow().last().expect("non-empty").1.clone();

        let w = profiles::by_name("gcc", 7).expect("profile");
        let mut core = Core::new(cfg, w, Box::new(FixedLevelPolicy::new(0)));
        core.restore(&bytes[..bytes.len() / 2])
            .expect_err("truncated image must fail");

        let mut padded = bytes.clone();
        padded.push(0);
        let w = profiles::by_name("gcc", 7).expect("profile");
        let mut core2 = Core::new(
            CoreConfig {
                snapshot_cycles: Some(1_000),
                ..CoreConfig::default()
            },
            w,
            Box::new(FixedLevelPolicy::new(0)),
        );
        assert_eq!(
            core2.restore(&padded).expect_err("trailing byte must fail"),
            SnapError::TrailingBytes { trailing: 1 }
        );

        // A core of different geometry must refuse the image.
        let w = profiles::by_name("gcc", 7).expect("profile");
        let mut other = Core::new(
            CoreConfig::with_table2_levels(),
            w,
            Box::new(FixedLevelPolicy::new(0)),
        );
        other
            .restore(&bytes)
            .expect_err("geometry mismatch must fail");
    }

    #[test]
    fn runahead_helps_clustered_miss_workloads() {
        let base = run_profile("libquantum", CoreConfig::default(), 0, 8_000);
        let cfg = CoreConfig {
            runahead: Some(crate::config::RunaheadOpts::default()),
            ..CoreConfig::default()
        };
        let ra = run_profile("libquantum", cfg, 0, 8_000);
        assert!(
            ra.ipc() > base.ipc(),
            "runahead should beat base on libquantum: {} vs {}",
            ra.ipc(),
            base.ipc()
        );
    }
}
