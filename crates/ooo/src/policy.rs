//! The window-resizing policy interface.
//!
//! The core queries its [`WindowPolicy`] once per cycle with the number
//! of fresh demand L2 misses observed in the previous cycle; the policy
//! answers with the level (0-based index into
//! [`CoreConfig::levels`](crate::CoreConfig)) the window should be at.
//! Enlarging takes effect immediately (plus the transition stall);
//! shrinking is applied by the core only when the doomed regions are
//! vacant, and the core reports every completed transition back through
//! [`WindowPolicy::on_transition`].
//!
//! This crate ships only the trivial [`FixedLevelPolicy`]; the paper's
//! MLP-aware dynamic policy lives in `mlpwin-core`.

use mlpwin_isa::snap::{SnapError, SnapReader, SnapWriter};
use mlpwin_isa::Cycle;

/// Per-cycle window-level decision maker.
pub trait WindowPolicy {
    /// Returns the desired level (0-based) for this cycle.
    ///
    /// `l2_demand_misses` counts the fresh demand L2 misses the core
    /// observed since the previous query; `current_level` is the level
    /// actually in effect; `max_level` is the highest configured index.
    fn target_level(
        &mut self,
        now: Cycle,
        l2_demand_misses: u32,
        current_level: usize,
        max_level: usize,
    ) -> usize;

    /// Notification that a resize committed (shrinks may lag the request
    /// while the doomed region drains).
    fn on_transition(&mut self, _now: Cycle, _old_level: usize, _new_level: usize) {}

    /// Earliest future cycle at which, *assuming no L2 miss and no
    /// transition intervenes*, this policy's [`target_level`] answer
    /// could differ from the answer it gives at `now`.
    ///
    /// The core's stall-cycle fast-forward uses this to skip cycles where
    /// the whole pipeline is provably inert: it never skips past the
    /// returned cycle. Policies whose answer only ever changes in
    /// response to a miss or a transition may return [`Cycle::MAX`].
    ///
    /// The default — `now + 1`, i.e. "could change next cycle" —
    /// disables fast-forwarding for policies that do not opt in, which
    /// is always safe.
    ///
    /// [`target_level`]: WindowPolicy::target_level
    fn quiet_until(&self, now: Cycle, _current_level: usize) -> Cycle {
        now + 1
    }

    /// Serializes the policy's mutable state into a core snapshot.
    ///
    /// Stateless policies (the default) write nothing; stateful ones
    /// must write every field whose value affects a future
    /// [`target_level`](WindowPolicy::target_level) answer, in the same
    /// order [`load_state`](WindowPolicy::load_state) reads it back.
    fn save_state(&self, _w: &mut SnapWriter) {}

    /// Restores the state written by
    /// [`save_state`](WindowPolicy::save_state).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the snapshot bytes do not decode to
    /// this policy's state.
    fn load_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// A policy pinning the window to one level forever — the paper's
/// fixed-size and ideal models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedLevelPolicy {
    level: usize,
}

impl FixedLevelPolicy {
    /// Pins the window to `level` (0-based).
    pub fn new(level: usize) -> FixedLevelPolicy {
        FixedLevelPolicy { level }
    }
}

impl WindowPolicy for FixedLevelPolicy {
    fn target_level(
        &mut self,
        _now: Cycle,
        _l2_demand_misses: u32,
        _current_level: usize,
        max_level: usize,
    ) -> usize {
        self.level.min(max_level)
    }

    fn quiet_until(&self, _now: Cycle, _current_level: usize) -> Cycle {
        // The answer is a compile-time constant: never a reason to step.
        Cycle::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_is_constant_and_clamped() {
        let mut p = FixedLevelPolicy::new(2);
        assert_eq!(p.target_level(0, 5, 0, 2), 2);
        assert_eq!(p.target_level(100, 0, 2, 2), 2);
        // Clamped to the configured ladder.
        assert_eq!(p.target_level(0, 0, 0, 1), 1);
    }

    #[test]
    fn fixed_policy_is_quiet_forever() {
        let p = FixedLevelPolicy::new(1);
        assert_eq!(p.quiet_until(123, 1), Cycle::MAX);
    }

    #[test]
    fn default_quiet_until_disables_fast_forward() {
        struct Opaque;
        impl WindowPolicy for Opaque {
            fn target_level(&mut self, _: Cycle, _: u32, l: usize, _: usize) -> usize {
                l
            }
        }
        assert_eq!(Opaque.quiet_until(50, 0), 51);
    }
}
