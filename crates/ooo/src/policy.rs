//! The window-resizing policy interface.
//!
//! The core queries its [`WindowPolicy`] once per cycle with the number
//! of fresh demand L2 misses observed in the previous cycle; the policy
//! answers with the level (0-based index into
//! [`CoreConfig::levels`](crate::CoreConfig)) the window should be at.
//! Enlarging takes effect immediately (plus the transition stall);
//! shrinking is applied by the core only when the doomed regions are
//! vacant, and the core reports every completed transition back through
//! [`WindowPolicy::on_transition`].
//!
//! This crate ships only the trivial [`FixedLevelPolicy`]; the paper's
//! MLP-aware dynamic policy lives in `mlpwin-core`.

use mlpwin_isa::Cycle;

/// Per-cycle window-level decision maker.
pub trait WindowPolicy {
    /// Returns the desired level (0-based) for this cycle.
    ///
    /// `l2_demand_misses` counts the fresh demand L2 misses the core
    /// observed since the previous query; `current_level` is the level
    /// actually in effect; `max_level` is the highest configured index.
    fn target_level(
        &mut self,
        now: Cycle,
        l2_demand_misses: u32,
        current_level: usize,
        max_level: usize,
    ) -> usize;

    /// Notification that a resize committed (shrinks may lag the request
    /// while the doomed region drains).
    fn on_transition(&mut self, _now: Cycle, _old_level: usize, _new_level: usize) {}
}

/// A policy pinning the window to one level forever — the paper's
/// fixed-size and ideal models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedLevelPolicy {
    level: usize,
}

impl FixedLevelPolicy {
    /// Pins the window to `level` (0-based).
    pub fn new(level: usize) -> FixedLevelPolicy {
        FixedLevelPolicy { level }
    }
}

impl WindowPolicy for FixedLevelPolicy {
    fn target_level(
        &mut self,
        _now: Cycle,
        _l2_demand_misses: u32,
        _current_level: usize,
        max_level: usize,
    ) -> usize {
        self.level.min(max_level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_is_constant_and_clamped() {
        let mut p = FixedLevelPolicy::new(2);
        assert_eq!(p.target_level(0, 5, 0, 2), 2);
        assert_eq!(p.target_level(100, 0, 2, 2), 2);
        // Clamped to the configured ladder.
        assert_eq!(p.target_level(0, 0, 0, 1), 1);
    }
}
