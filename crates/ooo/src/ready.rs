//! The age-ordered ready set: a packed bitmap over ROB slots.
//!
//! The scheduler's ready set used to be a `BTreeSet<DynSeq>` that the
//! select loop materialized into a fresh `Vec` every cycle. Because ROB
//! sequence numbers are contiguous (`dyn_seq - head.dyn_seq` indexes the
//! ROB; squashes reuse sequence numbers to keep it that way), a ready
//! instruction can instead set one bit in a ring of `u64` words indexed
//! by `dyn_seq mod N`, where `N` is a power of two at least as large as
//! the biggest configured ROB. Any window of at most `N` consecutive
//! sequence numbers then maps injectively onto the ring, so walking the
//! bitmap from the ROB head's slot visits ready instructions strictly
//! oldest-first — the same order the `BTreeSet` gave — with O(1)
//! insert/remove and no per-cycle allocation.

use crate::types::DynSeq;
use mlpwin_isa::snap::{SnapError, SnapReader, SnapWriter};

/// A fixed-capacity ready set over a contiguous `DynSeq` window,
/// iterated oldest-first in place.
#[derive(Debug, Clone)]
pub struct ReadyRing {
    words: Box<[u64]>,
    /// `slots - 1`; `slots` is a power of two ≥ the largest ROB.
    mask: u64,
    len: usize,
}

impl ReadyRing {
    /// Creates a ring able to distinguish any `capacity` consecutive
    /// sequence numbers (rounded up to a power of two, minimum 64).
    pub fn with_capacity(capacity: usize) -> ReadyRing {
        let slots = capacity.next_power_of_two().max(64);
        ReadyRing {
            words: vec![0u64; slots / 64].into_boxed_slice(),
            mask: (slots - 1) as u64,
            len: 0,
        }
    }

    /// Number of ready sequence numbers currently set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn locate(&self, seq: DynSeq) -> (usize, u64) {
        let slot = (seq & self.mask) as usize;
        (slot >> 6, 1u64 << (slot & 63))
    }

    /// Inserts `seq`; returns whether it was newly set.
    pub fn insert(&mut self, seq: DynSeq) -> bool {
        let (w, bit) = self.locate(seq);
        let fresh = self.words[w] & bit == 0;
        self.words[w] |= bit;
        self.len += fresh as usize;
        fresh
    }

    /// Removes `seq`; returns whether it was present.
    pub fn remove(&mut self, seq: DynSeq) -> bool {
        let (w, bit) = self.locate(seq);
        let present = self.words[w] & bit != 0;
        self.words[w] &= !bit;
        self.len -= present as usize;
        present
    }

    /// Whether `seq` is in the set.
    pub fn contains(&self, seq: DynSeq) -> bool {
        let (w, bit) = self.locate(seq);
        self.words[w] & bit != 0
    }

    /// Serializes the raw bitmap words.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64_slice(&self.words);
    }

    /// Restores the bitmap written by [`ReadyRing::save_state`] into a
    /// ring of the same geometry; the population count is recomputed.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let words = r.get_u64_vec()?;
        if words.len() != self.words.len() {
            return Err(SnapError::Mismatch {
                what: "ready-ring geometry",
            });
        }
        self.len = words.iter().map(|w| w.count_ones() as usize).sum();
        self.words = words.into_boxed_slice();
        Ok(())
    }

    /// Clears the whole set.
    pub fn clear(&mut self) {
        if self.len > 0 {
            self.words.fill(0);
            self.len = 0;
        }
    }

    /// The smallest set sequence number in `[from, end)`, or `None`.
    ///
    /// Callers must keep every live member inside one window of at most
    /// `slots` consecutive sequence numbers (the ROB guarantees this);
    /// bits belonging to slots outside `[from, end)` are never reported.
    /// Scans whole words, so a sparse set costs a handful of loads.
    pub fn next_at_or_after(&self, from: DynSeq, end: DynSeq) -> Option<DynSeq> {
        if self.len == 0 || from >= end {
            return None;
        }
        debug_assert!(end - from <= self.mask + 1, "window exceeds ring capacity");
        let mut seq = from;
        let mut remaining = end - from;
        loop {
            let slot = (seq & self.mask) as usize;
            let (w, bit) = (slot >> 6, (slot & 63) as u32);
            // Slots below `bit` in this word are behind the cursor (or
            // belong to the older arc of the window); shift them away.
            let word = self.words[w] >> bit;
            if word != 0 {
                let tz = word.trailing_zeros() as u64;
                // A set bit past the window's end belongs to the older
                // arc wrapping around the ring — the window is exhausted.
                return (tz < remaining).then_some(seq + tz);
            }
            let step = 64 - bit as u64;
            if step >= remaining {
                return None;
            }
            seq += step;
            remaining -= step;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_len() {
        let mut r = ReadyRing::with_capacity(128);
        assert!(r.is_empty());
        assert!(r.insert(5));
        assert!(!r.insert(5), "double insert is idempotent");
        assert!(r.insert(70));
        assert_eq!(r.len(), 2);
        assert!(r.contains(5) && r.contains(70) && !r.contains(6));
        assert!(r.remove(5));
        assert!(!r.remove(5), "double remove is idempotent");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn walks_oldest_first() {
        let mut r = ReadyRing::with_capacity(128);
        for s in [90u64, 3, 47, 120] {
            r.insert(s);
        }
        let mut seen = Vec::new();
        let mut cursor = 0u64;
        while let Some(s) = r.next_at_or_after(cursor, 128) {
            seen.push(s);
            cursor = s + 1;
        }
        assert_eq!(seen, vec![3, 47, 90, 120]);
    }

    #[test]
    fn window_wraps_across_the_ring() {
        // Capacity 64 → one word; live window [60, 70) wraps mod 64.
        let mut r = ReadyRing::with_capacity(64);
        r.insert(61);
        r.insert(66); // slot 2
        assert_eq!(r.next_at_or_after(60, 70), Some(61));
        assert_eq!(r.next_at_or_after(62, 70), Some(66));
        assert_eq!(r.next_at_or_after(67, 70), None);
        // Bits behind the cursor (slot 61) must not surface via wrap.
        r.remove(66);
        assert_eq!(r.next_at_or_after(62, 70), None);
    }

    #[test]
    fn window_end_excludes_older_arc_bits() {
        let mut r = ReadyRing::with_capacity(64);
        // Window [100, 110); a bit at 100 sits at slot 36.
        r.insert(100);
        // Cursor past it: nothing ahead even though slot 36 wraps ahead
        // of slot (101 & 63) = 37 only in seq space, not slot space.
        assert_eq!(r.next_at_or_after(101, 110), None);
        assert_eq!(r.next_at_or_after(100, 110), Some(100));
    }

    #[test]
    fn multi_word_scan_skips_empty_words() {
        let mut r = ReadyRing::with_capacity(512);
        r.insert(400);
        assert_eq!(r.next_at_or_after(0, 512), Some(400));
        assert_eq!(r.next_at_or_after(401, 512), None);
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = ReadyRing::with_capacity(64);
        r.insert(1);
        r.insert(2);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.next_at_or_after(0, 64), None);
    }
}
