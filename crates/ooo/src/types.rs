//! Dynamic-instruction state carried through the pipeline.

use mlpwin_branch::PredictionOutcome;
use mlpwin_isa::snap::{SnapError, SnapReader, SnapWriter};
use mlpwin_isa::{Cycle, Instruction, SeqNum};

/// Identifier of a dynamic instruction: a monotonically increasing
/// counter over everything that enters the pipeline, wrong path included.
pub type DynSeq = u64;

/// A producer's dependent-waiter list, inlined into the ROB entry.
///
/// Most producers have only a couple of direct readers, so the first few
/// sequence numbers live in the entry itself; only crowded lists (a
/// long-latency load feeding a wide fan-out) spill to the heap. This
/// keeps the rename stage allocation-free on the common path.
#[derive(Debug, Clone, Default)]
pub struct SeqList {
    inline: [DynSeq; SeqList::INLINE],
    inline_len: u8,
    spill: Vec<DynSeq>,
}

impl SeqList {
    const INLINE: usize = 4;

    /// Appends a waiter.
    pub fn push(&mut self, seq: DynSeq) {
        let n = self.inline_len as usize;
        if n < SeqList::INLINE {
            self.inline[n] = seq;
            self.inline_len += 1;
        } else {
            self.spill.push(seq);
        }
    }

    /// Number of waiters recorded.
    pub fn len(&self) -> usize {
        self.inline_len as usize + self.spill.len()
    }

    /// Whether no waiter is recorded.
    pub fn is_empty(&self) -> bool {
        self.inline_len == 0
    }

    /// Iterates the waiters in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = DynSeq> + '_ {
        self.inline[..self.inline_len as usize]
            .iter()
            .copied()
            .chain(self.spill.iter().copied())
    }

    /// Serializes the waiter list in insertion order.
    pub fn encode(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for s in self.iter() {
            w.put_u64(s);
        }
    }

    /// Decodes a waiter list written by [`SeqList::encode`].
    pub fn decode(r: &mut SnapReader<'_>) -> Result<SeqList, SnapError> {
        let seqs = r.get_u64_vec()?;
        let mut list = SeqList::default();
        for s in seqs {
            list.push(s);
        }
        Ok(list)
    }
}

/// Memory-operation progress of a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemState {
    /// Not a memory operation.
    None,
    /// In the LSQ, operands not yet ready or access not yet performed.
    Waiting,
    /// A load blocked behind an older store (not yet issued/overlapping).
    Blocked,
    /// Access performed (data in flight or arrived for loads; address and
    /// data valid in the store queue for stores).
    Issued,
}

/// One in-flight dynamic instruction: the ROB entry, issue-queue state,
/// and LSQ state fused into a single record (the simulator's ROB *is* the
/// ordered collection of these).
#[derive(Debug, Clone)]
pub struct DynInst {
    /// Pipeline-unique sequence number (allocation order).
    pub dyn_seq: DynSeq,
    /// Position in the committed-path trace; `None` for wrong-path
    /// instructions.
    pub trace_seq: Option<SeqNum>,
    /// The static instruction.
    pub inst: Instruction,
    /// True if fetched past an unresolved mispredicted branch.
    pub wrong_path: bool,
    /// Cycle the instruction was fetched.
    pub fetched_at: Cycle,

    // ---- scheduling ----
    /// Producer (by `dyn_seq`) of each source operand, if in flight at
    /// rename time.
    pub src_producers: [Option<DynSeq>; 2],
    /// Cycle each source operand becomes available.
    pub src_ready: [Cycle; 2],
    /// Whether each source operand carries an INV (runahead) value.
    pub src_inv: [bool; 2],
    /// Number of source operands whose availability is still unknown.
    pub unresolved_srcs: u8,
    /// Earliest cycle at which every source is available (valid once
    /// `unresolved_srcs == 0`).
    pub ready_time: Cycle,
    /// Still occupies an issue-queue entry.
    pub in_iq: bool,
    /// Has been selected and sent to a function unit.
    pub issued: bool,
    /// Cycle the instruction issued (meaningful once `issued`).
    pub issued_at: Cycle,
    /// Cycle the result is available to dependents (`Cycle::MAX` until
    /// known). Includes the issue-queue re-broadcast depth.
    pub value_ready_at: Cycle,
    /// Cycle execution finishes and the instruction may commit.
    pub complete_at: Cycle,
    /// Execution finished.
    pub completed: bool,
    /// Dependents (by `dyn_seq`) waiting for this result.
    pub waiters: SeqList,

    // ---- memory ----
    /// Load/store progress.
    pub mem_state: MemState,
    /// End-to-end latency of the memory access (loads; for Table 3).
    pub mem_latency: u32,
    /// The access missed the L2 (used by runahead's trigger condition).
    pub l2_miss: bool,

    // ---- control ----
    /// Prediction made at fetch, for resolution/training.
    pub bp_outcome: Option<PredictionOutcome>,
    /// The prediction was wrong; resolution squashes younger state.
    pub mispredicted: bool,

    // ---- rename rollback ----
    /// Previous map-table entry for the destination register (restored on
    /// squash), as (register index, previous producer).
    pub prev_map: Option<(usize, Option<DynSeq>)>,

    // ---- runahead ----
    /// Result is invalid (dependent on the runahead-triggering miss).
    pub inv: bool,
}

impl DynInst {
    /// Wraps a fetched instruction with cleared pipeline state.
    pub fn new(
        dyn_seq: DynSeq,
        trace_seq: Option<SeqNum>,
        inst: Instruction,
        wrong_path: bool,
        fetched_at: Cycle,
    ) -> DynInst {
        let mem_state = if inst.op.is_mem() {
            MemState::Waiting
        } else {
            MemState::None
        };
        DynInst {
            dyn_seq,
            trace_seq,
            inst,
            wrong_path,
            fetched_at,
            src_producers: [None, None],
            src_ready: [0, 0],
            src_inv: [false, false],
            unresolved_srcs: 0,
            ready_time: 0,
            in_iq: false,
            issued: false,
            issued_at: 0,
            value_ready_at: Cycle::MAX,
            complete_at: Cycle::MAX,
            completed: false,
            waiters: SeqList::default(),
            mem_state,
            mem_latency: 0,
            l2_miss: false,
            bp_outcome: None,
            mispredicted: false,
            prev_map: None,
            inv: false,
        }
    }

    /// True for loads and stores.
    pub fn is_mem(&self) -> bool {
        self.inst.op.is_mem()
    }

    /// True for control transfers.
    pub fn is_branch(&self) -> bool {
        self.inst.op.is_branch()
    }

    /// Serializes the full dynamic state for a snapshot.
    pub fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.dyn_seq);
        w.put_opt_u64(self.trace_seq);
        self.inst.encode(w);
        w.put_bool(self.wrong_path);
        w.put_u64(self.fetched_at);
        for p in &self.src_producers {
            w.put_opt_u64(*p);
        }
        for t in &self.src_ready {
            w.put_u64(*t);
        }
        for i in &self.src_inv {
            w.put_bool(*i);
        }
        w.put_u8(self.unresolved_srcs);
        w.put_u64(self.ready_time);
        w.put_bool(self.in_iq);
        w.put_bool(self.issued);
        w.put_u64(self.issued_at);
        w.put_u64(self.value_ready_at);
        w.put_u64(self.complete_at);
        w.put_bool(self.completed);
        self.waiters.encode(w);
        w.put_u8(match self.mem_state {
            MemState::None => 0,
            MemState::Waiting => 1,
            MemState::Blocked => 2,
            MemState::Issued => 3,
        });
        w.put_u32(self.mem_latency);
        w.put_bool(self.l2_miss);
        w.put_opt(self.bp_outcome.as_ref(), |w, o| o.encode(w));
        w.put_bool(self.mispredicted);
        w.put_opt(self.prev_map.as_ref(), |w, (reg, prev)| {
            w.put_usize(*reg);
            w.put_opt_u64(*prev);
        });
        w.put_bool(self.inv);
    }

    /// Decodes the record written by [`DynInst::encode`].
    pub fn decode(r: &mut SnapReader<'_>) -> Result<DynInst, SnapError> {
        let dyn_seq = r.get_u64()?;
        let trace_seq = r.get_opt_u64()?;
        let inst = Instruction::decode(r)?;
        let wrong_path = r.get_bool()?;
        let fetched_at = r.get_u64()?;
        let mut d = DynInst::new(dyn_seq, trace_seq, inst, wrong_path, fetched_at);
        for p in &mut d.src_producers {
            *p = r.get_opt_u64()?;
        }
        for t in &mut d.src_ready {
            *t = r.get_u64()?;
        }
        for i in &mut d.src_inv {
            *i = r.get_bool()?;
        }
        d.unresolved_srcs = r.get_u8()?;
        d.ready_time = r.get_u64()?;
        d.in_iq = r.get_bool()?;
        d.issued = r.get_bool()?;
        d.issued_at = r.get_u64()?;
        d.value_ready_at = r.get_u64()?;
        d.complete_at = r.get_u64()?;
        d.completed = r.get_bool()?;
        d.waiters = SeqList::decode(r)?;
        let offset = r.offset();
        d.mem_state = match r.get_u8()? {
            0 => MemState::None,
            1 => MemState::Waiting,
            2 => MemState::Blocked,
            3 => MemState::Issued,
            tag => {
                return Err(SnapError::BadTag {
                    offset,
                    tag,
                    what: "mem state",
                })
            }
        };
        d.mem_latency = r.get_u32()?;
        d.l2_miss = r.get_bool()?;
        d.bp_outcome = r.get_opt(PredictionOutcome::decode)?;
        d.mispredicted = r.get_bool()?;
        d.prev_map = r.get_opt(|r| {
            let offset = r.offset();
            let reg = r.get_usize()?;
            if reg >= 64 {
                return Err(SnapError::BadLength {
                    offset,
                    len: reg as u64,
                    what: "rename rollback register",
                });
            }
            let prev = r.get_opt_u64()?;
            Ok((reg, prev))
        })?;
        d.inv = r.get_bool()?;
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpwin_isa::{ArchReg, MemRef, OpClass};

    #[test]
    fn new_inst_state_is_clean() {
        let i = Instruction::alu(0x100, OpClass::IntAlu, ArchReg::int(1), &[ArchReg::int(2)]);
        let d = DynInst::new(7, Some(3), i, false, 42);
        assert_eq!(d.dyn_seq, 7);
        assert_eq!(d.trace_seq, Some(3));
        assert!(!d.issued && !d.completed && !d.inv);
        assert_eq!(d.mem_state, MemState::None);
        assert_eq!(d.value_ready_at, Cycle::MAX);
    }

    #[test]
    fn memory_ops_start_waiting() {
        let l = Instruction::load(
            0x100,
            ArchReg::int(1),
            ArchReg::int(2),
            MemRef::new(0x40, 8),
        );
        let d = DynInst::new(0, None, l, true, 0);
        assert_eq!(d.mem_state, MemState::Waiting);
        assert!(d.is_mem());
        assert!(d.wrong_path);
    }

    #[test]
    fn branch_predicate() {
        let b = Instruction::cond_branch(0x100, ArchReg::int(1), true, 0x80);
        assert!(DynInst::new(0, Some(0), b, false, 0).is_branch());
    }

    #[test]
    fn seq_list_spills_past_its_inline_capacity() {
        let mut l = SeqList::default();
        assert!(l.is_empty());
        for s in 0..10u64 {
            l.push(s);
        }
        assert_eq!(l.len(), 10);
        assert!(!l.is_empty());
        let collected: Vec<DynSeq> = l.iter().collect();
        assert_eq!(collected, (0..10).collect::<Vec<_>>());
        // A taken list is empty and reusable (the notify pass relies on
        // take-then-restore).
        let taken = std::mem::take(&mut l);
        assert!(l.is_empty());
        assert_eq!(taken.len(), 10);
    }
}
