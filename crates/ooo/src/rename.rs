//! Register renaming — the P6 map table.
//!
//! Each architectural register maps to the in-flight instruction (by
//! `DynSeq`) that will produce its newest value, or to nothing when the
//! committed value in the architectural file is current (always ready).
//! Squash recovery walks the ROB from youngest to the squash point,
//! undoing each instruction's mapping with the previous producer it
//! recorded at rename.

use crate::types::DynSeq;
use mlpwin_isa::snap::{SnapError, SnapReader, SnapWriter};
use mlpwin_isa::ArchReg;

/// The rename map table.
#[derive(Debug, Clone)]
pub struct RenameMap {
    map: [Option<DynSeq>; 64],
}

impl Default for RenameMap {
    fn default() -> RenameMap {
        RenameMap::new()
    }
}

impl RenameMap {
    /// Creates a map where every register reads the architectural file.
    pub fn new() -> RenameMap {
        RenameMap { map: [None; 64] }
    }

    /// The current producer of `reg`, or `None` when the architectural
    /// value is current.
    pub fn producer(&self, reg: ArchReg) -> Option<DynSeq> {
        self.map[reg.index()]
    }

    /// Installs `dyn_seq` as the producer of `reg`, returning the
    /// previous mapping for rollback.
    pub fn define(&mut self, reg: ArchReg, dyn_seq: DynSeq) -> Option<DynSeq> {
        self.map[reg.index()].replace(dyn_seq)
    }

    /// At commit: if `reg` still maps to `dyn_seq`, the committed value
    /// becomes architectural and the mapping clears.
    pub fn commit(&mut self, reg: ArchReg, dyn_seq: DynSeq) {
        if self.map[reg.index()] == Some(dyn_seq) {
            self.map[reg.index()] = None;
        }
    }

    /// Squash rollback: restores the mapping of register index `reg_idx`
    /// to `prev` (recorded at rename time).
    pub fn rollback(&mut self, reg_idx: usize, prev: Option<DynSeq>) {
        self.map[reg_idx] = prev;
    }

    /// Number of registers currently mapped to in-flight producers.
    pub fn live_mappings(&self) -> usize {
        self.map.iter().filter(|m| m.is_some()).count()
    }

    /// Serializes all 64 map-table entries.
    pub fn save_state(&self, w: &mut SnapWriter) {
        for m in &self.map {
            w.put_opt_u64(*m);
        }
    }

    /// Restores the map written by [`RenameMap::save_state`].
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for m in &mut self.map {
            *m = r.get_opt_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_lookup() {
        let mut m = RenameMap::new();
        let r = ArchReg::int(5);
        assert_eq!(m.producer(r), None);
        assert_eq!(m.define(r, 10), None);
        assert_eq!(m.producer(r), Some(10));
        assert_eq!(m.define(r, 11), Some(10));
        assert_eq!(m.producer(r), Some(11));
    }

    #[test]
    fn commit_clears_only_the_latest() {
        let mut m = RenameMap::new();
        let r = ArchReg::int(5);
        m.define(r, 10);
        m.define(r, 11);
        // Committing the older writer must not clear the newer mapping.
        m.commit(r, 10);
        assert_eq!(m.producer(r), Some(11));
        m.commit(r, 11);
        assert_eq!(m.producer(r), None);
    }

    #[test]
    fn rollback_restores_previous_producer() {
        let mut m = RenameMap::new();
        let r = ArchReg::fp(3);
        let prev0 = m.define(r, 20);
        let prev1 = m.define(r, 21);
        assert_eq!(prev1, Some(20));
        // Squash 21, then 20 (youngest first, as the ROB walk does).
        m.rollback(r.index(), prev1);
        assert_eq!(m.producer(r), Some(20));
        m.rollback(r.index(), prev0);
        assert_eq!(m.producer(r), None);
    }

    #[test]
    fn live_mapping_count() {
        let mut m = RenameMap::new();
        assert_eq!(m.live_mappings(), 0);
        m.define(ArchReg::int(1), 1);
        m.define(ArchReg::fp(1), 2);
        assert_eq!(m.live_mappings(), 2);
        m.commit(ArchReg::int(1), 1);
        assert_eq!(m.live_mappings(), 1);
    }
}
