//! Core configuration: pipeline widths, the resource-level table, and
//! optional runahead execution.

use mlpwin_branch::PredictorConfig;
use mlpwin_memsys::MemSystemConfig;

/// Size and pipelining of the window resources at one resource level
/// (one row of the paper's Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelSpec {
    /// Issue-queue entries.
    pub iq: usize,
    /// Reorder-buffer entries.
    pub rob: usize,
    /// Load/store-queue entries.
    pub lsq: usize,
    /// Issue-queue pipeline depth: dependent ops separated by
    /// `max(latency, depth)` cycles. Depth 1 = back-to-back capable.
    pub iq_depth: u32,
    /// Extra branch-misprediction penalty cycles at this level (deeper IQ
    /// plus pipelined ROB register read).
    pub extra_mispredict_penalty: u32,
}

impl Default for LevelSpec {
    /// Level 1 — the conventional processor's window.
    fn default() -> LevelSpec {
        LevelSpec::level1()
    }
}

impl LevelSpec {
    /// Level 1 of Table 2 — the conventional (base) processor.
    pub fn level1() -> LevelSpec {
        LevelSpec {
            iq: 64,
            rob: 128,
            lsq: 64,
            iq_depth: 1,
            extra_mispredict_penalty: 0,
        }
    }

    /// Level 2 of Table 2.
    pub fn level2() -> LevelSpec {
        LevelSpec {
            iq: 160,
            rob: 320,
            lsq: 160,
            iq_depth: 2,
            extra_mispredict_penalty: 2,
        }
    }

    /// Level 3 of Table 2.
    pub fn level3() -> LevelSpec {
        LevelSpec {
            iq: 256,
            rob: 512,
            lsq: 256,
            iq_depth: 2,
            extra_mispredict_penalty: 2,
        }
    }

    /// The full Table 2 ladder.
    pub fn table2() -> Vec<LevelSpec> {
        vec![LevelSpec::level1(), LevelSpec::level2(), LevelSpec::level3()]
    }

    /// The *ideal-model* variant of a level: same sizes, but un-pipelined
    /// and without extra penalties (the paper's upper-bound comparison).
    pub fn idealized(mut self) -> LevelSpec {
        self.iq_depth = 1;
        self.extra_mispredict_penalty = 0;
        self
    }
}

/// Runahead-execution options (paper §5.7 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunaheadOpts {
    /// Runahead cache size in bytes (512 B in the paper's configuration).
    pub cache_bytes: usize,
    /// Runahead cache associativity (4-way in the paper).
    pub cache_ways: usize,
    /// Line size of the runahead cache.
    pub cache_line: usize,
    /// Enables the runahead cause status table, which suppresses entry
    /// into runahead episodes predicted useless.
    pub use_cause_status_table: bool,
    /// Cause-status-table entries.
    pub cst_entries: usize,
    /// Minimum L2 misses observed during an episode for the CST to deem
    /// the triggering load useful.
    pub cst_useful_threshold: u32,
    /// Do not enter runahead unless at least this many cycles of the
    /// triggering miss remain — short episodes cannot overlap anything
    /// (one of the ISCA 2005 efficiency techniques).
    pub min_entry_remaining: u32,
}

impl Default for RunaheadOpts {
    fn default() -> RunaheadOpts {
        RunaheadOpts {
            cache_bytes: 512,
            cache_ways: 4,
            cache_line: 8,
            use_cause_status_table: true,
            cst_entries: 256,
            cst_useful_threshold: 1,
            min_entry_remaining: 150,
        }
    }
}

/// Full configuration of the simulated processor.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Fetch/decode/rename width per cycle.
    pub fetch_width: usize,
    /// Issue width per cycle.
    pub issue_width: usize,
    /// Commit width per cycle.
    pub commit_width: usize,
    /// Front-end depth: cycles from fetch to rename/dispatch.
    pub front_depth: u32,
    /// Fetch-queue capacity.
    pub fetch_queue: usize,
    /// Base branch-misprediction penalty (Table 1: 10 cycles).
    pub mispredict_penalty: u32,
    /// The resource-level ladder; index 0 is level 1. Must not be empty.
    pub levels: Vec<LevelSpec>,
    /// Allocation-stall cycles charged at each level transition.
    pub transition_penalty: u32,
    /// Function-unit counts indexed by [`mlpwin_isa::FuKind::index`].
    pub fu_counts: [usize; 5],
    /// Branch predictor configuration.
    pub predictor: PredictorConfig,
    /// Memory hierarchy configuration.
    pub memory: MemSystemConfig,
    /// Runahead execution; `None` disables it (the default).
    pub runahead: Option<RunaheadOpts>,
    /// Seed for the wrong-path synthesizer.
    pub wrongpath_seed: u64,
}

impl Default for CoreConfig {
    /// The paper's base processor (Table 1): a level-1-only window.
    fn default() -> CoreConfig {
        CoreConfig {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            front_depth: 4,
            fetch_queue: 16,
            mispredict_penalty: 10,
            levels: vec![LevelSpec::level1()],
            transition_penalty: 10,
            fu_counts: [4, 2, 2, 4, 2],
            predictor: PredictorConfig::default(),
            memory: MemSystemConfig::default(),
            runahead: None,
            wrongpath_seed: 0xBAD_C0DE,
        }
    }
}

impl CoreConfig {
    /// The paper's dynamic-resizing processor: the full Table 2 ladder.
    pub fn with_table2_levels() -> CoreConfig {
        CoreConfig {
            levels: LevelSpec::table2(),
            ..CoreConfig::default()
        }
    }

    /// Validates widths, levels and unit counts.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.fetch_width == 0 || self.issue_width == 0 || self.commit_width == 0 {
            return Err("pipeline widths must be positive".into());
        }
        if self.levels.is_empty() {
            return Err("at least one resource level is required".into());
        }
        for (i, l) in self.levels.iter().enumerate() {
            if l.iq == 0 || l.rob == 0 || l.lsq == 0 {
                return Err(format!("level {} has an empty resource", i + 1));
            }
            if l.iq_depth == 0 {
                return Err(format!("level {} iq_depth must be >= 1", i + 1));
            }
            if i > 0 {
                let p = &self.levels[i - 1];
                if l.iq < p.iq || l.rob < p.rob || l.lsq < p.lsq {
                    return Err(format!("level {} smaller than level {}", i + 1, i));
                }
            }
        }
        if self.fu_counts.iter().any(|&c| c == 0) {
            return Err("every function-unit pool needs at least one unit".into());
        }
        if self.fetch_queue == 0 {
            return Err("fetch queue must have capacity".into());
        }
        Ok(())
    }

    /// The largest (physical) level sizes — what the hardware provisions.
    pub fn max_level_spec(&self) -> LevelSpec {
        *self.levels.last().expect("levels validated non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = CoreConfig::default();
        c.validate().unwrap();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.mispredict_penalty, 10);
        assert_eq!(c.levels[0], LevelSpec::level1());
        assert_eq!(c.fu_counts, [4, 2, 2, 4, 2]);
    }

    #[test]
    fn table2_ladder_matches_the_paper() {
        let l = LevelSpec::table2();
        assert_eq!(l.len(), 3);
        assert_eq!((l[0].iq, l[0].rob, l[0].lsq, l[0].iq_depth), (64, 128, 64, 1));
        assert_eq!((l[1].iq, l[1].rob, l[1].lsq, l[1].iq_depth), (160, 320, 160, 2));
        assert_eq!((l[2].iq, l[2].rob, l[2].lsq, l[2].iq_depth), (256, 512, 256, 2));
    }

    #[test]
    fn idealized_level_is_unpipelined() {
        let i = LevelSpec::level3().idealized();
        assert_eq!(i.iq_depth, 1);
        assert_eq!(i.extra_mispredict_penalty, 0);
        assert_eq!(i.rob, 512);
    }

    #[test]
    fn validation_catches_bad_ladders() {
        let mut c = CoreConfig::with_table2_levels();
        c.levels[1].rob = 64; // smaller than level 1
        assert!(c.validate().is_err());

        let mut c2 = CoreConfig::default();
        c2.levels.clear();
        assert!(c2.validate().is_err());

        let mut c3 = CoreConfig::default();
        c3.levels[0].iq_depth = 0;
        assert!(c3.validate().is_err());

        let mut c4 = CoreConfig::default();
        c4.fu_counts[2] = 0;
        assert!(c4.validate().is_err());
    }

    #[test]
    fn max_level_spec_is_the_last() {
        let c = CoreConfig::with_table2_levels();
        assert_eq!(c.max_level_spec(), LevelSpec::level3());
    }
}
