//! Core configuration: pipeline widths, the resource-level table,
//! optional runahead execution, and the forward-progress watchdog.

use crate::trace::TraceConfig;
use mlpwin_branch::PredictorConfig;
use mlpwin_memsys::MemSystemConfig;
use std::fmt;

/// Default watchdog budget: cycles with no commit before the simulator
/// assumes a modelling bug (memory latency is 300; any real stall clears
/// in a few thousand cycles).
pub const DEFAULT_WATCHDOG_CYCLES: u64 = 500_000;

/// A structurally invalid [`CoreConfig`], rejected before a core is
/// built. Each variant names the first offending field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A fetch/issue/commit width is zero.
    ZeroWidth,
    /// The resource-level ladder is empty.
    EmptyLevels,
    /// A level's ROB, IQ or LSQ has zero entries (1-based level index).
    EmptyResource(usize),
    /// A level's issue-queue depth is zero (1-based level index).
    ZeroIqDepth(usize),
    /// A level is smaller than its predecessor in some resource — the
    /// ladder must be monotone (1-based index of the smaller level).
    NonMonotoneLadder(usize),
    /// A function-unit pool has zero units.
    EmptyFuPool,
    /// The fetch queue has zero capacity.
    EmptyFetchQueue,
    /// The watchdog budget is zero — it could never observe a commit.
    ZeroWatchdog,
    /// The interval collector's epoch length is zero.
    ZeroIntervalEpoch,
    /// The snapshot cadence is zero cycles.
    ZeroSnapshotCadence,
    /// The tracer's ring-buffer capacity is zero.
    ZeroTraceCapacity,
    /// The tracer's LLC-miss sampling divisor is zero.
    ZeroTraceSample,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWidth => write!(f, "pipeline widths must be positive"),
            ConfigError::EmptyLevels => write!(f, "at least one resource level is required"),
            ConfigError::EmptyResource(l) => write!(f, "level {l} has an empty resource"),
            ConfigError::ZeroIqDepth(l) => write!(f, "level {l} iq_depth must be >= 1"),
            ConfigError::NonMonotoneLadder(l) => {
                write!(f, "level {} smaller than level {}", l, l - 1)
            }
            ConfigError::EmptyFuPool => {
                write!(f, "every function-unit pool needs at least one unit")
            }
            ConfigError::EmptyFetchQueue => write!(f, "fetch queue must have capacity"),
            ConfigError::ZeroWatchdog => write!(f, "watchdog budget must be positive"),
            ConfigError::ZeroIntervalEpoch => {
                write!(f, "interval epoch length must be positive")
            }
            ConfigError::ZeroSnapshotCadence => {
                write!(f, "snapshot cadence must be positive")
            }
            ConfigError::ZeroTraceCapacity => {
                write!(f, "trace ring capacity must be positive")
            }
            ConfigError::ZeroTraceSample => {
                write!(f, "trace LLC sampling divisor must be positive")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Test-support fault injection, simulating the failure modes a
/// resilient experiment harness must contain. `None` everywhere (the
/// default) means a faithful simulation.
///
/// Livelock is injected here rather than in a workload because a correct
/// core cannot be livelocked by any well-formed instruction stream —
/// only a modelling bug stops commit, and that is what the freeze
/// simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultInjection {
    /// Stop committing (silently, like a lost wakeup) once this many
    /// instructions have committed since construction — an injected
    /// livelock the watchdog must catch.
    pub freeze_commit_after: Option<u64>,
    /// Panic at commit once this many instructions have committed since
    /// construction — an injected crash the matrix runner must isolate.
    pub panic_after: Option<u64>,
}

/// Size and pipelining of the window resources at one resource level
/// (one row of the paper's Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelSpec {
    /// Issue-queue entries.
    pub iq: usize,
    /// Reorder-buffer entries.
    pub rob: usize,
    /// Load/store-queue entries.
    pub lsq: usize,
    /// Issue-queue pipeline depth: dependent ops separated by
    /// `max(latency, depth)` cycles. Depth 1 = back-to-back capable.
    pub iq_depth: u32,
    /// Extra branch-misprediction penalty cycles at this level (deeper IQ
    /// plus pipelined ROB register read).
    pub extra_mispredict_penalty: u32,
}

impl Default for LevelSpec {
    /// Level 1 — the conventional processor's window.
    fn default() -> LevelSpec {
        LevelSpec::level1()
    }
}

impl LevelSpec {
    /// Level 1 of Table 2 — the conventional (base) processor.
    pub fn level1() -> LevelSpec {
        LevelSpec {
            iq: 64,
            rob: 128,
            lsq: 64,
            iq_depth: 1,
            extra_mispredict_penalty: 0,
        }
    }

    /// Level 2 of Table 2.
    pub fn level2() -> LevelSpec {
        LevelSpec {
            iq: 160,
            rob: 320,
            lsq: 160,
            iq_depth: 2,
            extra_mispredict_penalty: 2,
        }
    }

    /// Level 3 of Table 2.
    pub fn level3() -> LevelSpec {
        LevelSpec {
            iq: 256,
            rob: 512,
            lsq: 256,
            iq_depth: 2,
            extra_mispredict_penalty: 2,
        }
    }

    /// The full Table 2 ladder.
    pub fn table2() -> Vec<LevelSpec> {
        vec![
            LevelSpec::level1(),
            LevelSpec::level2(),
            LevelSpec::level3(),
        ]
    }

    /// The *ideal-model* variant of a level: same sizes, but un-pipelined
    /// and without extra penalties (the paper's upper-bound comparison).
    pub fn idealized(mut self) -> LevelSpec {
        self.iq_depth = 1;
        self.extra_mispredict_penalty = 0;
        self
    }
}

/// Runahead-execution options (paper §5.7 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunaheadOpts {
    /// Runahead cache size in bytes (512 B in the paper's configuration).
    pub cache_bytes: usize,
    /// Runahead cache associativity (4-way in the paper).
    pub cache_ways: usize,
    /// Line size of the runahead cache.
    pub cache_line: usize,
    /// Enables the runahead cause status table, which suppresses entry
    /// into runahead episodes predicted useless.
    pub use_cause_status_table: bool,
    /// Cause-status-table entries.
    pub cst_entries: usize,
    /// Minimum L2 misses observed during an episode for the CST to deem
    /// the triggering load useful.
    pub cst_useful_threshold: u32,
    /// Do not enter runahead unless at least this many cycles of the
    /// triggering miss remain — short episodes cannot overlap anything
    /// (one of the ISCA 2005 efficiency techniques).
    pub min_entry_remaining: u32,
}

impl Default for RunaheadOpts {
    fn default() -> RunaheadOpts {
        RunaheadOpts {
            cache_bytes: 512,
            cache_ways: 4,
            cache_line: 8,
            use_cause_status_table: true,
            cst_entries: 256,
            cst_useful_threshold: 1,
            min_entry_remaining: 150,
        }
    }
}

/// Full configuration of the simulated processor.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Fetch/decode/rename width per cycle.
    pub fetch_width: usize,
    /// Issue width per cycle.
    pub issue_width: usize,
    /// Commit width per cycle.
    pub commit_width: usize,
    /// Front-end depth: cycles from fetch to rename/dispatch.
    pub front_depth: u32,
    /// Fetch-queue capacity.
    pub fetch_queue: usize,
    /// Base branch-misprediction penalty (Table 1: 10 cycles).
    pub mispredict_penalty: u32,
    /// The resource-level ladder; index 0 is level 1. Must not be empty.
    pub levels: Vec<LevelSpec>,
    /// Allocation-stall cycles charged at each level transition.
    pub transition_penalty: u32,
    /// Function-unit counts indexed by [`mlpwin_isa::FuKind::index`].
    pub fu_counts: [usize; 5],
    /// Branch predictor configuration.
    pub predictor: PredictorConfig,
    /// Memory hierarchy configuration.
    pub memory: MemSystemConfig,
    /// Runahead execution; `None` disables it (the default).
    pub runahead: Option<RunaheadOpts>,
    /// Seed for the wrong-path synthesizer.
    pub wrongpath_seed: u64,
    /// Cycles with no commit before a run aborts with
    /// [`PipelineError::Stall`](crate::PipelineError::Stall).
    pub watchdog_cycles: u64,
    /// Per-run wall-cycle deadline: a call to [`Core::run`](crate::Core::run)
    /// (or warm-up) that simulates more than this many cycles aborts with
    /// [`PipelineError::DeadlineExceeded`](crate::PipelineError::DeadlineExceeded).
    /// `None` (the default) disables the limit.
    pub deadline_cycles: Option<u64>,
    /// Stall-cycle fast-forward: when dispatch is blocked and the whole
    /// pipeline is provably inert, jump `now` to the next event instead
    /// of stepping cycle by cycle, bulk-charging the skipped cycles to
    /// the same CPI bucket they would have accrued. Semantics-neutral by
    /// construction (the fastpath equivalence suite asserts bit-identical
    /// stats with it on and off); the knob exists for those A/B tests
    /// and for debugging. Default `true`.
    pub fast_forward: bool,
    /// Event-driven scheduling: the core consults the full wake plan —
    /// including the memory system's
    /// [`next_event_at`](mlpwin_memsys::MemSystem::next_event_at)
    /// contract — when fast-forwarding, so the memory side drives
    /// wakeups instead of being polled, and the event wheels' telemetry
    /// is reported as engine counters. Semantics-neutral like
    /// `fast_forward` (the event-equivalence suite asserts bit-identical
    /// stats, intervals and snapshots with it on and off); the memory
    /// bound can only *shrink* a skip, and any legal skip is
    /// stats-neutral by the fast-forward's construction. Default
    /// `false`; enabled per run via `MLPWIN_EVENT_DRIVEN`.
    pub event_driven: bool,
    /// Fault injection for harness tests; `None` (the default) disables.
    pub fault: Option<FaultInjection>,
    /// Interval time-series epoch length in cycles; `None` (the
    /// default) disables collection. When set, the core appends one
    /// [`IntervalSample`](crate::stats::IntervalSample) to
    /// `CoreStats::intervals` every `interval_cycles` measured cycles.
    pub interval_cycles: Option<u64>,
    /// Runtime tracing knob. Always present so configurations are
    /// feature-independent, but events are only recorded when the crate
    /// is built with the `trace` cargo feature; without it the field is
    /// validated and otherwise inert.
    pub trace: Option<TraceConfig>,
    /// Mid-run snapshot cadence in cycles; `None` (the default)
    /// disables periodic snapshots. When set, the core offers a full
    /// state snapshot to its installed sink every `snapshot_cycles`
    /// measured cycles, and the stall fast-forward never skips across a
    /// cadence boundary — so snapshots land on the identical cycles
    /// with the fast-forward on and off.
    pub snapshot_cycles: Option<u64>,
}

impl Default for CoreConfig {
    /// The paper's base processor (Table 1): a level-1-only window.
    fn default() -> CoreConfig {
        CoreConfig {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            front_depth: 4,
            fetch_queue: 16,
            mispredict_penalty: 10,
            levels: vec![LevelSpec::level1()],
            transition_penalty: 10,
            fu_counts: [4, 2, 2, 4, 2],
            predictor: PredictorConfig::default(),
            memory: MemSystemConfig::default(),
            runahead: None,
            wrongpath_seed: 0xBAD_C0DE,
            watchdog_cycles: DEFAULT_WATCHDOG_CYCLES,
            deadline_cycles: None,
            fast_forward: true,
            event_driven: false,
            fault: None,
            interval_cycles: None,
            trace: None,
            snapshot_cycles: None,
        }
    }
}

impl CoreConfig {
    /// The paper's dynamic-resizing processor: the full Table 2 ladder.
    pub fn with_table2_levels() -> CoreConfig {
        CoreConfig {
            levels: LevelSpec::table2(),
            ..CoreConfig::default()
        }
    }

    /// Validates widths, levels, unit counts and the watchdog budget.
    ///
    /// # Errors
    ///
    /// Returns the first invalid field as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.fetch_width == 0 || self.issue_width == 0 || self.commit_width == 0 {
            return Err(ConfigError::ZeroWidth);
        }
        if self.levels.is_empty() {
            return Err(ConfigError::EmptyLevels);
        }
        for (i, l) in self.levels.iter().enumerate() {
            if l.iq == 0 || l.rob == 0 || l.lsq == 0 {
                return Err(ConfigError::EmptyResource(i + 1));
            }
            if l.iq_depth == 0 {
                return Err(ConfigError::ZeroIqDepth(i + 1));
            }
            if i > 0 {
                let p = &self.levels[i - 1];
                if l.iq < p.iq || l.rob < p.rob || l.lsq < p.lsq {
                    return Err(ConfigError::NonMonotoneLadder(i + 1));
                }
            }
        }
        if self.fu_counts.contains(&0) {
            return Err(ConfigError::EmptyFuPool);
        }
        if self.fetch_queue == 0 {
            return Err(ConfigError::EmptyFetchQueue);
        }
        if self.watchdog_cycles == 0 {
            return Err(ConfigError::ZeroWatchdog);
        }
        if self.interval_cycles == Some(0) {
            return Err(ConfigError::ZeroIntervalEpoch);
        }
        if self.snapshot_cycles == Some(0) {
            return Err(ConfigError::ZeroSnapshotCadence);
        }
        if let Some(trace) = &self.trace {
            if trace.capacity == 0 {
                return Err(ConfigError::ZeroTraceCapacity);
            }
            if trace.llc_sample == 0 {
                return Err(ConfigError::ZeroTraceSample);
            }
        }
        Ok(())
    }

    /// The largest (physical) level sizes — what the hardware provisions.
    pub fn max_level_spec(&self) -> LevelSpec {
        *self.levels.last().expect("levels validated non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = CoreConfig::default();
        c.validate().unwrap();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.mispredict_penalty, 10);
        assert_eq!(c.levels[0], LevelSpec::level1());
        assert_eq!(c.fu_counts, [4, 2, 2, 4, 2]);
    }

    #[test]
    fn table2_ladder_matches_the_paper() {
        let l = LevelSpec::table2();
        assert_eq!(l.len(), 3);
        assert_eq!(
            (l[0].iq, l[0].rob, l[0].lsq, l[0].iq_depth),
            (64, 128, 64, 1)
        );
        assert_eq!(
            (l[1].iq, l[1].rob, l[1].lsq, l[1].iq_depth),
            (160, 320, 160, 2)
        );
        assert_eq!(
            (l[2].iq, l[2].rob, l[2].lsq, l[2].iq_depth),
            (256, 512, 256, 2)
        );
    }

    #[test]
    fn idealized_level_is_unpipelined() {
        let i = LevelSpec::level3().idealized();
        assert_eq!(i.iq_depth, 1);
        assert_eq!(i.extra_mispredict_penalty, 0);
        assert_eq!(i.rob, 512);
    }

    #[test]
    fn validation_catches_bad_ladders() {
        let mut c = CoreConfig::with_table2_levels();
        c.levels[1].rob = 64; // smaller than level 1
        assert_eq!(c.validate(), Err(ConfigError::NonMonotoneLadder(2)));

        let mut c2 = CoreConfig::default();
        c2.levels.clear();
        assert_eq!(c2.validate(), Err(ConfigError::EmptyLevels));

        let mut c3 = CoreConfig::default();
        c3.levels[0].iq_depth = 0;
        assert_eq!(c3.validate(), Err(ConfigError::ZeroIqDepth(1)));

        let mut c4 = CoreConfig::default();
        c4.fu_counts[2] = 0;
        assert_eq!(c4.validate(), Err(ConfigError::EmptyFuPool));

        let c5 = CoreConfig {
            watchdog_cycles: 0,
            ..CoreConfig::default()
        };
        assert_eq!(c5.validate(), Err(ConfigError::ZeroWatchdog));

        let mut c6 = CoreConfig::with_table2_levels();
        c6.levels[2].lsq = 0;
        assert_eq!(c6.validate(), Err(ConfigError::EmptyResource(3)));
    }

    #[test]
    fn validation_catches_bad_observability_knobs() {
        let c = CoreConfig {
            interval_cycles: Some(0),
            ..CoreConfig::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroIntervalEpoch));

        let c2 = CoreConfig {
            trace: Some(TraceConfig {
                capacity: 0,
                llc_sample: 1,
            }),
            ..CoreConfig::default()
        };
        assert_eq!(c2.validate(), Err(ConfigError::ZeroTraceCapacity));

        let c3 = CoreConfig {
            trace: Some(TraceConfig {
                capacity: 16,
                llc_sample: 0,
            }),
            ..CoreConfig::default()
        };
        assert_eq!(c3.validate(), Err(ConfigError::ZeroTraceSample));

        let c4 = CoreConfig {
            snapshot_cycles: Some(0),
            ..CoreConfig::default()
        };
        assert_eq!(c4.validate(), Err(ConfigError::ZeroSnapshotCadence));

        let ok = CoreConfig {
            interval_cycles: Some(1_000),
            trace: Some(TraceConfig::default()),
            snapshot_cycles: Some(50_000),
            ..CoreConfig::default()
        };
        ok.validate().expect("well-formed observability knobs");
    }

    #[test]
    fn config_errors_render_their_field() {
        assert_eq!(
            ConfigError::NonMonotoneLadder(2).to_string(),
            "level 2 smaller than level 1"
        );
        assert!(ConfigError::ZeroWatchdog.to_string().contains("watchdog"));
    }

    #[test]
    fn max_level_spec_is_the_last() {
        let c = CoreConfig::with_table2_levels();
        assert_eq!(c.max_level_spec(), LevelSpec::level3());
    }
}
