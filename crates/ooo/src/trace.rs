//! Structured event tracing.
//!
//! A [`Tracer`] records the events that explain *why* the window is the
//! size it is: level transitions, runahead episode boundaries, pipeline
//! squashes and last-level-cache misses. Events live in a bounded ring
//! buffer — when it fills, the oldest events are overwritten and a drop
//! counter keeps the books, so a long run costs bounded memory and the
//! tail of the run (usually the interesting part) survives.
//!
//! The module is always compiled so its invariants stay testable, but
//! the core only *calls* it when the `trace` cargo feature is enabled:
//! a default build carries no tracer field and no per-event branches,
//! which is what keeps the zero-cost claim honest (see
//! `tests/trace_zero_cost.rs`). With the feature on, the runtime knob is
//! [`CoreConfig::trace`](crate::CoreConfig) — `None` means no tracer is
//! allocated and every hook is one `Option` test.
//!
//! High-frequency events (LLC misses) additionally honour a sampling
//! divisor, [`TraceConfig::llc_sample`]: only every Nth miss is offered
//! to the ring. Rare events (transitions, runahead boundaries, squashes)
//! are always offered.

use mlpwin_isa::{Addr, Cycle};
use std::collections::VecDeque;

/// What happened, without the timestamp (that lives in [`TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// The window grew `from` → `to` (0-based levels); allocation stalls
    /// for `penalty` cycles.
    LevelUp {
        /// Previous level (0-based).
        from: usize,
        /// New level (0-based).
        to: usize,
        /// Transition penalty charged (cycles).
        penalty: u32,
    },
    /// The window shrank `from` → `to` after its doomed regions drained.
    LevelDown {
        /// Previous level (0-based).
        from: usize,
        /// New level (0-based).
        to: usize,
        /// Transition penalty charged (cycles).
        penalty: u32,
    },
    /// A runahead episode began on an L2-missing load at `trigger_pc`.
    RunaheadEnter {
        /// PC of the triggering load.
        trigger_pc: Addr,
    },
    /// The runahead episode ended (the triggering miss returned).
    RunaheadExit {
        /// Additional L2 misses the episode overlapped.
        l2_misses: u32,
        /// Whether the cause-status table will count it useful.
        useful: bool,
    },
    /// Branch recovery squashed every instruction younger than `at_seq`.
    Squash {
        /// Dynamic sequence number of the mispredicted branch.
        at_seq: u64,
    },
    /// A demand access missed the last-level cache.
    LlcMiss {
        /// PC of the access.
        pc: Addr,
        /// Missing address.
        addr: Addr,
        /// Outstanding misses (MSHR occupancy) at record time.
        mshr_occupancy: u32,
    },
}

impl TraceEventKind {
    /// Short stable name, used by exporters.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::LevelUp { .. } => "level_up",
            TraceEventKind::LevelDown { .. } => "level_down",
            TraceEventKind::RunaheadEnter { .. } => "runahead_enter",
            TraceEventKind::RunaheadExit { .. } => "runahead_exit",
            TraceEventKind::Squash { .. } => "squash",
            TraceEventKind::LlcMiss { .. } => "llc_miss",
        }
    }
}

/// One timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event was recorded.
    pub cycle: Cycle,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Runtime tracing configuration (the knob in `CoreConfig::trace`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring-buffer capacity in events. Must be positive.
    pub capacity: usize,
    /// Record only every Nth LLC-miss event (1 = record all). Must be
    /// positive. Rare events (transitions, runahead, squashes) ignore
    /// this divisor.
    pub llc_sample: u64,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            capacity: 64 * 1024,
            llc_sample: 1,
        }
    }
}

/// A bounded ring of [`TraceEvent`]s with overflow accounting.
#[derive(Debug, Clone)]
pub struct Tracer {
    cfg: TraceConfig,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
    llc_seen: u64,
}

impl Tracer {
    /// An empty tracer with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity or zero sampling divisor; both are
    /// rejected earlier by `CoreConfig::validate`, so a core never
    /// constructs an invalid tracer.
    pub fn new(cfg: TraceConfig) -> Tracer {
        assert!(cfg.capacity > 0, "trace capacity must be positive");
        assert!(cfg.llc_sample > 0, "llc_sample must be positive");
        Tracer {
            cfg,
            buf: VecDeque::with_capacity(cfg.capacity.min(4096)),
            dropped: 0,
            llc_seen: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Records an event, evicting the oldest one when the ring is full.
    /// `cycle` must be non-decreasing across calls (the core records in
    /// simulation order); the buffered slice is therefore always sorted.
    pub fn record(&mut self, cycle: Cycle, kind: TraceEventKind) {
        debug_assert!(
            self.buf.back().is_none_or(|e| e.cycle <= cycle),
            "trace events must be recorded in cycle order"
        );
        if self.buf.len() == self.cfg.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TraceEvent { cycle, kind });
    }

    /// Offers an LLC-miss event through the sampling divisor: the 1st,
    /// (N+1)th, (2N+1)th... observed misses are recorded, the rest are
    /// counted but not stored.
    pub fn offer_llc_miss(&mut self, cycle: Cycle, pc: Addr, addr: Addr, mshr_occupancy: u32) {
        let sampled = self.llc_seen.is_multiple_of(self.cfg.llc_sample);
        self.llc_seen += 1;
        if sampled {
            self.record(
                cycle,
                TraceEventKind::LlcMiss {
                    pc,
                    addr,
                    mshr_occupancy,
                },
            );
        }
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of buffered events (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted by ring overflow. Every event ever recorded is
    /// either buffered or counted here: `recorded = len() + dropped()`.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events recorded into the ring (buffered + dropped). LLC
    /// misses filtered out by sampling never count.
    pub fn recorded(&self) -> u64 {
        self.buf.len() as u64 + self.dropped
    }

    /// Total LLC misses observed, sampled or not.
    pub fn llc_misses_seen(&self) -> u64 {
        self.llc_seen
    }

    /// Drains the buffered events, oldest first, leaving the counters
    /// (dropped, LLC-seen) intact.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squash(seq: u64) -> TraceEventKind {
        TraceEventKind::Squash { at_seq: seq }
    }

    #[test]
    fn ring_keeps_the_newest_events() {
        let mut t = Tracer::new(TraceConfig {
            capacity: 3,
            llc_sample: 1,
        });
        for i in 0..10u64 {
            t.record(i, squash(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.recorded(), 10);
        let cycles: Vec<Cycle> = t.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    fn sampling_thins_llc_misses_only() {
        let mut t = Tracer::new(TraceConfig {
            capacity: 100,
            llc_sample: 4,
        });
        for i in 0..10u64 {
            t.offer_llc_miss(i, 0x400, 0x8000 + i * 64, 1);
        }
        t.record(10, squash(1)); // rare events bypass the divisor
        assert_eq!(t.llc_misses_seen(), 10);
        // Misses 0, 4 and 8 are sampled; the squash always records.
        assert_eq!(t.recorded(), 4);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn drain_empties_but_keeps_counters() {
        let mut t = Tracer::new(TraceConfig {
            capacity: 2,
            llc_sample: 1,
        });
        t.record(1, squash(1));
        t.record(2, squash(2));
        t.record(3, squash(3));
        let drained = t.drain();
        assert_eq!(drained.len(), 2);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = Tracer::new(TraceConfig {
            capacity: 0,
            llc_sample: 1,
        });
    }

    #[test]
    fn event_kinds_have_stable_names() {
        assert_eq!(
            TraceEventKind::LevelUp {
                from: 0,
                to: 2,
                penalty: 10
            }
            .name(),
            "level_up"
        );
        assert_eq!(
            TraceEventKind::LlcMiss {
                pc: 0,
                addr: 0,
                mshr_occupancy: 0
            }
            .name(),
            "llc_miss"
        );
    }
}
