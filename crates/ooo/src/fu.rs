//! Function-unit pools.
//!
//! Pipelined units accept one operation per cycle per unit; unpipelined
//! units (integer/FP divide, FP sqrt) are reserved until their operation
//! completes.

use mlpwin_isa::snap::{SnapError, SnapReader, SnapWriter};
use mlpwin_isa::{Cycle, FuKind, OpClass};

/// The five function-unit pools of the core.
#[derive(Debug, Clone)]
pub struct FuPool {
    counts: [usize; 5],
    /// Completion times of in-flight unpipelined reservations, per pool.
    busy: [Vec<Cycle>; 5],
    /// Total reservations across `busy` — lets [`FuPool::begin_cycle`]
    /// skip the per-pool expiry scans entirely on the (overwhelmingly
    /// common) cycles where no divide/sqrt is in flight.
    busy_total: usize,
    /// Issues performed this cycle, per pool (reset by [`FuPool::begin_cycle`]).
    issued_this_cycle: [usize; 5],
}

impl FuPool {
    /// Creates the pools with the given unit counts (indexed by
    /// [`FuKind::index`]).
    ///
    /// # Panics
    ///
    /// Panics if any pool is empty.
    pub fn new(counts: [usize; 5]) -> FuPool {
        assert!(counts.iter().all(|&c| c > 0), "every pool needs a unit");
        FuPool {
            counts,
            busy: Default::default(),
            busy_total: 0,
            issued_this_cycle: [0; 5],
        }
    }

    /// Starts a new cycle: clears per-cycle issue counts and expires
    /// finished unpipelined reservations.
    pub fn begin_cycle(&mut self, now: Cycle) {
        self.issued_this_cycle = [0; 5];
        if self.busy_total > 0 {
            for pool in &mut self.busy {
                pool.retain(|&t| t > now);
            }
            self.busy_total = self.busy.iter().map(Vec::len).sum();
        }
    }

    /// Whether an operation of class `op` can issue this cycle.
    pub fn can_issue(&self, op: OpClass) -> bool {
        let k = op.fu_kind().index();
        self.busy[k].len() + self.issued_this_cycle[k] < self.counts[k]
    }

    /// Records the issue of `op` at `now` with execution latency
    /// `latency`; reserves the unit for unpipelined classes.
    ///
    /// # Panics
    ///
    /// Panics if no unit is available (check [`FuPool::can_issue`] first).
    pub fn issue(&mut self, op: OpClass, now: Cycle, latency: u32) {
        assert!(self.can_issue(op), "no {} unit free", op.fu_kind());
        let k = op.fu_kind().index();
        if op.is_unpipelined() {
            // The busy reservation itself blocks the unit for the rest of
            // this cycle and beyond; counting it in issued_this_cycle too
            // would double-book the unit.
            self.busy[k].push(now + latency as Cycle);
            self.busy_total += 1;
        } else {
            self.issued_this_cycle[k] += 1;
        }
    }

    /// Units of `kind` still available this cycle.
    pub fn available(&self, kind: FuKind) -> usize {
        let k = kind.index();
        self.counts[k] - self.busy[k].len() - self.issued_this_cycle[k]
    }

    /// Clears all unpipelined reservations (pipeline squash).
    pub fn flush(&mut self) {
        for pool in &mut self.busy {
            pool.clear();
        }
        self.busy_total = 0;
    }

    /// Serializes the unpipelined reservations. Per-cycle issue counts
    /// are skipped: [`FuPool::begin_cycle`] resets them before any issue
    /// decision, and snapshots are only taken between steps.
    pub fn save_state(&self, w: &mut SnapWriter) {
        for pool in &self.busy {
            w.put_u64_slice(pool);
        }
    }

    /// Restores the reservations written by [`FuPool::save_state`].
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for pool in &mut self.busy {
            *pool = r.get_u64_vec()?;
        }
        self.busy_total = self.busy.iter().map(Vec::len).sum();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> FuPool {
        FuPool::new([4, 2, 2, 4, 2])
    }

    #[test]
    fn per_cycle_width_limits() {
        let mut p = pool();
        p.begin_cycle(0);
        for _ in 0..4 {
            assert!(p.can_issue(OpClass::IntAlu));
            p.issue(OpClass::IntAlu, 0, 1);
        }
        assert!(!p.can_issue(OpClass::IntAlu));
        // Other pools unaffected.
        assert!(p.can_issue(OpClass::Load));
        p.begin_cycle(1);
        assert!(p.can_issue(OpClass::IntAlu));
    }

    #[test]
    fn unpipelined_ops_hold_the_unit() {
        let mut p = pool();
        p.begin_cycle(0);
        p.issue(OpClass::IntDiv, 0, 20);
        p.issue(OpClass::IntDiv, 0, 20);
        assert!(!p.can_issue(OpClass::IntDiv));
        assert!(!p.can_issue(OpClass::IntMul), "mul shares the div pool");
        p.begin_cycle(5);
        assert!(!p.can_issue(OpClass::IntDiv), "still busy at cycle 5");
        p.begin_cycle(20);
        assert!(p.can_issue(OpClass::IntDiv), "freed when latency elapsed");
    }

    #[test]
    fn pipelined_multiplies_issue_every_cycle() {
        let mut p = pool();
        p.begin_cycle(0);
        p.issue(OpClass::IntMul, 0, 3);
        p.issue(OpClass::IntMul, 0, 3);
        assert!(!p.can_issue(OpClass::IntMul));
        p.begin_cycle(1);
        assert!(p.can_issue(OpClass::IntMul), "pipelined: next cycle free");
    }

    #[test]
    fn flush_releases_reservations() {
        let mut p = pool();
        p.begin_cycle(0);
        p.issue(OpClass::FpDiv, 0, 12);
        p.flush();
        p.begin_cycle(1);
        assert_eq!(p.available(FuKind::FpMulDiv), 2);
    }

    #[test]
    fn available_counts() {
        let mut p = pool();
        p.begin_cycle(0);
        assert_eq!(p.available(FuKind::MemPort), 2);
        p.issue(OpClass::Load, 0, 1);
        assert_eq!(p.available(FuKind::MemPort), 1);
    }
}
