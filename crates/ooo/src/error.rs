//! Typed pipeline failures.
//!
//! The simulator's contract is forward progress: every well-formed
//! workload commits instructions at a bounded rate. When that contract
//! breaks — a modelling bug, an injected fault, or an exhausted cycle
//! deadline — [`Core::run`](crate::Core::run) returns a
//! [`PipelineError`] carrying a [`StallSnapshot`] of the machine state
//! instead of panicking or spinning forever, so a matrix harness can
//! report the failure and keep running its other specs.

use mlpwin_isa::Cycle;
use std::fmt;

/// Diagnostic state captured at the moment the watchdog or deadline
/// fired — everything needed to triage a stall post-mortem without
/// re-running the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallSnapshot {
    /// Cycle at which the error was raised.
    pub cycle: Cycle,
    /// Committed-path instructions retired so far (measurement window).
    pub committed_insts: u64,
    /// Cycles elapsed since the last commit.
    pub stalled_for: u64,
    /// Current resource level (0-based).
    pub level: usize,
    /// Reorder-buffer occupancy.
    pub rob_len: usize,
    /// Issue-queue occupancy.
    pub iq_occ: usize,
    /// Load/store-queue occupancy.
    pub lsq_occ: usize,
    /// In-flight line fills across the memory hierarchy's MSHR files.
    pub outstanding_misses: usize,
    /// Whether a runahead episode was active.
    pub in_runahead: bool,
    /// Debug rendering of the ROB head `(inst, issued, completed)`, the
    /// usual culprit of a stall; `None` when the ROB is empty.
    pub rob_head: Option<String>,
}

impl fmt::Display for StallSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle={} committed={} stalled_for={} level={} rob={} iq={} lsq={} \
             mshrs={} runahead={} head={}",
            self.cycle,
            self.committed_insts,
            self.stalled_for,
            self.level + 1,
            self.rob_len,
            self.iq_occ,
            self.lsq_occ,
            self.outstanding_misses,
            self.in_runahead,
            self.rob_head.as_deref().unwrap_or("<empty>"),
        )
    }
}

/// A run that could not complete its instruction budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// No instruction committed for the configured watchdog budget — the
    /// pipeline is livelocked (memory latency is ~300 cycles; any real
    /// stall clears in a few thousand).
    Stall {
        /// The watchdog budget that was exhausted.
        budget: u64,
        /// Machine state when the watchdog fired.
        snapshot: StallSnapshot,
    },
    /// The run exceeded its wall-cycle deadline while still making
    /// progress — the spec asked for more simulation than its budget.
    DeadlineExceeded {
        /// The per-run cycle limit that was exceeded.
        limit: Cycle,
        /// Machine state when the deadline fired.
        snapshot: StallSnapshot,
    },
}

impl PipelineError {
    /// The diagnostic snapshot, whichever variant carries it.
    pub fn snapshot(&self) -> &StallSnapshot {
        match self {
            PipelineError::Stall { snapshot, .. } => snapshot,
            PipelineError::DeadlineExceeded { snapshot, .. } => snapshot,
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Stall { budget, snapshot } => {
                write!(
                    f,
                    "pipeline stall: no commit for {budget} cycles [{snapshot}]"
                )
            }
            PipelineError::DeadlineExceeded { limit, snapshot } => {
                write!(f, "run exceeded its {limit}-cycle deadline [{snapshot}]")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> StallSnapshot {
        StallSnapshot {
            cycle: 12_345,
            committed_insts: 900,
            stalled_for: 5_000,
            level: 1,
            rob_len: 320,
            iq_occ: 17,
            lsq_occ: 42,
            outstanding_misses: 3,
            in_runahead: false,
            rob_head: Some("Load@0x400".into()),
        }
    }

    #[test]
    fn display_carries_the_diagnostics() {
        let e = PipelineError::Stall {
            budget: 5_000,
            snapshot: snapshot(),
        };
        let s = e.to_string();
        assert!(s.contains("no commit for 5000 cycles"), "{s}");
        assert!(s.contains("rob=320"), "{s}");
        assert!(s.contains("Load@0x400"), "{s}");
        assert_eq!(e.snapshot().iq_occ, 17);
    }

    #[test]
    fn deadline_display_names_the_limit() {
        let e = PipelineError::DeadlineExceeded {
            limit: 1_000_000,
            snapshot: snapshot(),
        };
        assert!(e.to_string().contains("1000000-cycle deadline"));
    }
}
