//! # mlpwin-ooo
//!
//! A cycle-level out-of-order superscalar core with an Intel P6-type
//! backend and *resizable, pipelineable* instruction-window resources —
//! the substrate the paper's mechanism lives in.
//!
//! ## Microarchitecture (Table 1 of the paper)
//!
//! - 4-wide fetch / decode / rename / issue / commit;
//! - gshare + BTB front end (from `mlpwin-branch`) with genuine
//!   wrong-path fetch after a misprediction;
//! - P6 organization: the reorder buffer holds results, a map table
//!   renames architectural registers to ROB slots, the data-capture issue
//!   queue holds operands and performs wakeup/select;
//! - load/store queue with store-to-load forwarding and perfect memory
//!   disambiguation (addresses come from the trace — see `DESIGN.md`);
//! - function units: 4 iALU, 2 iMUL/DIV, 2 load/store ports, 4 fpALU,
//!   2 fpMUL/DIV/SQRT; divides are unpipelined;
//! - non-blocking memory hierarchy from `mlpwin-memsys`.
//!
//! ## The resizable window
//!
//! ROB, IQ and LSQ capacities are set per *resource level* (Table 2).
//! The issue queue at depth *d* cannot issue dependent single-cycle
//! operations back-to-back: a consumer of an operation with latency *L*
//! issues no earlier than `issue + max(L, d)`. Levels ≥ 2 also lengthen
//! the branch-misprediction penalty (pipelined IQ and pipelined ROB
//! register read). A [`WindowPolicy`] decides each cycle which level the
//! window should be at; this crate ships the trivial
//! [`FixedLevelPolicy`], and `mlpwin-core` implements the paper's
//! MLP-aware dynamic policy.
//!
//! Shrinking obeys the paper's protocol: the level drops only when the
//! doomed tail regions of ROB, IQ and LSQ are simultaneously vacant; until
//! then front-end allocation stalls. Every transition costs a fixed
//! allocation-stall penalty (10 cycles by default).
//!
//! ## Runahead mode
//!
//! The runahead-execution comparison (paper §5.7) shares this pipeline:
//! commit-stage checkpointing, INV propagation, the runahead cache and the
//! cause-status table are implemented in [`runahead`] and enabled through
//! [`CoreConfig::runahead`]. The `mlpwin-runahead` crate curates the
//! configuration and analysis; the mechanics live here because they are
//! interleaved with the commit stage.
//!
//! ## Example
//!
//! ```
//! use mlpwin_ooo::{Core, CoreConfig, FixedLevelPolicy};
//! use mlpwin_workloads::profiles;
//!
//! let config = CoreConfig::default(); // level-1-only window
//! let workload = profiles::by_name("gcc", 1).expect("profile exists");
//! let mut core = Core::new(config, workload, Box::new(FixedLevelPolicy::new(0)));
//! let stats = core.run(5_000).expect("healthy run");
//! assert!(stats.committed_insts >= 5_000);
//! assert!(stats.ipc() > 0.1);
//! ```
//!
//! ## Failure contract
//!
//! [`Core::run`] returns a typed [`PipelineError`] instead of panicking:
//! a watchdog converts a commit-less stretch of `watchdog_cycles` into
//! [`PipelineError::Stall`] with a [`StallSnapshot`] of the machine
//! state, and an optional `deadline_cycles` budget bounds each call's
//! wall cycles. [`CoreConfig::fault`] injects commit-stage faults
//! (freeze or panic) so harnesses can test their recovery paths.
//!
//! ## Observability
//!
//! Every cycle is charged to exactly one [`CpiBucket`] of a per-level
//! CPI stack ([`CoreStats::cpi_stack`]), and
//! [`CoreConfig::interval_cycles`] turns on a fixed-epoch time series of
//! IPC, window level, occupancies and outstanding misses
//! ([`CoreStats::intervals`]). The `trace` cargo feature additionally
//! compiles in a ring-buffered structured-event [`Tracer`] (level
//! transitions, runahead boundaries, squashes, sampled LLC misses)
//! enabled at runtime via [`CoreConfig::trace`]; default builds carry
//! no tracer state and no per-event branches.

pub mod config;
#[allow(clippy::module_inception)]
pub mod core;
pub mod error;
pub mod events;
pub mod frontend;
pub mod fu;
pub mod lsq;
pub mod policy;
pub mod ready;
pub mod rename;
pub mod runahead;
pub mod stats;
pub mod trace;
pub mod types;

pub use config::{
    ConfigError, CoreConfig, FaultInjection, LevelSpec, RunaheadOpts, DEFAULT_WATCHDOG_CYCLES,
};
pub use core::Core;
pub use error::{PipelineError, StallSnapshot};
pub use events::{EngineCounters, EventWheel, WakeSource};
pub use policy::{FixedLevelPolicy, WindowPolicy};
pub use ready::ReadyRing;
pub use stats::{CoreStats, CpiBucket, DeltaError, IntervalSample, StatsDelta, CPI_BUCKETS};
pub use trace::{TraceConfig, TraceEvent, TraceEventKind, Tracer};
pub use types::{DynInst, DynSeq, MemState, SeqList};
