//! Load/store queue with store-to-load forwarding.
//!
//! The LSQ keeps loads and stores in program order. A load about to
//! access memory scans the older stores:
//!
//! - an older *issued* store overlapping its address forwards the data
//!   (L1-hit-like latency, no cache access);
//! - an older *un-issued* store overlapping its address blocks the load
//!   until the store's operands arrive;
//! - otherwise the load goes to the cache.
//!
//! Non-overlapping un-issued stores do not block — perfect memory
//! disambiguation, the standard idealization for trace-driven simulation
//! where every address is architecturally known (`DESIGN.md` §5).

use crate::types::DynSeq;
use mlpwin_isa::MemRef;
use std::collections::VecDeque;

/// What a load should do, per the disambiguation scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadCheck {
    /// Forward from the youngest older overlapping (issued) store,
    /// identified by its `DynSeq` (so the consumer can inherit its INV
    /// status during runahead).
    Forward(DynSeq),
    /// Wait: an older overlapping store has not produced its data yet.
    Blocked,
    /// Access the cache hierarchy.
    Access,
}

#[derive(Debug, Clone, Copy)]
struct LsqEntry {
    dyn_seq: DynSeq,
    is_store: bool,
    mem: MemRef,
    issued: bool,
}

/// The load/store queue.
#[derive(Debug, Clone, Default)]
pub struct Lsq {
    entries: VecDeque<LsqEntry>,
}

impl Lsq {
    /// Creates an empty queue.
    pub fn new() -> Lsq {
        Lsq::default()
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Appends a memory operation (program order).
    ///
    /// # Panics
    ///
    /// Panics if `dyn_seq` is not younger than every current entry.
    pub fn allocate(&mut self, dyn_seq: DynSeq, is_store: bool, mem: MemRef) {
        if let Some(back) = self.entries.back() {
            assert!(back.dyn_seq < dyn_seq, "LSQ allocation out of order");
        }
        self.entries.push_back(LsqEntry {
            dyn_seq,
            is_store,
            mem,
            issued: false,
        });
    }

    /// Marks the entry's address/data as produced (store executed or load
    /// access performed).
    pub fn mark_issued(&mut self, dyn_seq: DynSeq) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.dyn_seq == dyn_seq) {
            e.issued = true;
        }
    }

    /// Disambiguation scan for the load `dyn_seq` with reference `mem`.
    pub fn check_load(&self, dyn_seq: DynSeq, mem: &MemRef) -> LoadCheck {
        // Scan older entries youngest-first so the nearest store wins.
        for e in self.entries.iter().rev() {
            if e.dyn_seq >= dyn_seq || !e.is_store {
                continue;
            }
            if e.mem.overlaps(mem) {
                return if e.issued {
                    LoadCheck::Forward(e.dyn_seq)
                } else {
                    LoadCheck::Blocked
                };
            }
        }
        LoadCheck::Access
    }

    /// Removes the committed (oldest) entry.
    ///
    /// # Panics
    ///
    /// Panics if the head is not `dyn_seq` (commit must be in order).
    pub fn commit(&mut self, dyn_seq: DynSeq) {
        let head = self.entries.pop_front().expect("commit from empty LSQ");
        assert_eq!(head.dyn_seq, dyn_seq, "LSQ commit out of order");
    }

    /// Drops every entry younger than `dyn_seq` (squash).
    pub fn squash_younger(&mut self, dyn_seq: DynSeq) {
        while let Some(back) = self.entries.back() {
            if back.dyn_seq > dyn_seq {
                self.entries.pop_back();
            } else {
                break;
            }
        }
    }

    /// Drops everything (runahead exit).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(addr: u64) -> MemRef {
        MemRef::new(addr, 8)
    }

    #[test]
    fn load_with_no_stores_accesses_cache() {
        let mut q = Lsq::new();
        q.allocate(1, false, m(0x100));
        assert_eq!(q.check_load(1, &m(0x100)), LoadCheck::Access);
    }

    #[test]
    fn issued_store_forwards() {
        let mut q = Lsq::new();
        q.allocate(1, true, m(0x100));
        q.allocate(2, false, m(0x100));
        assert_eq!(q.check_load(2, &m(0x100)), LoadCheck::Blocked);
        q.mark_issued(1);
        assert_eq!(q.check_load(2, &m(0x100)), LoadCheck::Forward(1));
    }

    #[test]
    fn nearest_older_store_wins() {
        let mut q = Lsq::new();
        q.allocate(1, true, m(0x100));
        q.mark_issued(1);
        q.allocate(2, true, m(0x100)); // younger, un-issued
        q.allocate(3, false, m(0x100));
        // Store 2 is nearer: load must block on it even though store 1
        // could forward.
        assert_eq!(q.check_load(3, &m(0x100)), LoadCheck::Blocked);
    }

    #[test]
    fn younger_stores_do_not_affect_the_load() {
        let mut q = Lsq::new();
        q.allocate(1, false, m(0x100));
        q.allocate(2, true, m(0x100));
        assert_eq!(q.check_load(1, &m(0x100)), LoadCheck::Access);
    }

    #[test]
    fn disjoint_stores_do_not_block() {
        let mut q = Lsq::new();
        q.allocate(1, true, m(0x200));
        q.allocate(2, false, m(0x100));
        assert_eq!(q.check_load(2, &m(0x100)), LoadCheck::Access);
    }

    #[test]
    fn partial_overlap_blocks() {
        let mut q = Lsq::new();
        q.allocate(1, true, MemRef::new(0x104, 8));
        q.allocate(2, false, MemRef::new(0x100, 8));
        assert_eq!(q.check_load(2, &m(0x100)), LoadCheck::Blocked);
    }

    #[test]
    fn commit_pops_in_order() {
        let mut q = Lsq::new();
        q.allocate(1, false, m(0x100));
        q.allocate(2, true, m(0x108));
        q.commit(1);
        q.commit(2);
        assert_eq!(q.occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn commit_out_of_order_panics() {
        let mut q = Lsq::new();
        q.allocate(1, false, m(0x100));
        q.allocate(2, false, m(0x108));
        q.commit(2);
    }

    #[test]
    fn squash_drops_younger_only() {
        let mut q = Lsq::new();
        q.allocate(1, false, m(0x100));
        q.allocate(2, true, m(0x108));
        q.allocate(3, false, m(0x110));
        q.squash_younger(1);
        assert_eq!(q.occupancy(), 1);
        assert_eq!(q.check_load(5, &m(0x100)), LoadCheck::Access);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn allocation_must_be_in_order() {
        let mut q = Lsq::new();
        q.allocate(5, false, m(0x100));
        q.allocate(3, false, m(0x108));
    }
}
