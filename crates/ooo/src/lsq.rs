//! Load/store queue with store-to-load forwarding.
//!
//! The LSQ keeps loads and stores in program order. A load about to
//! access memory scans the older stores:
//!
//! - an older *issued* store overlapping its address forwards the data
//!   (L1-hit-like latency, no cache access);
//! - an older *un-issued* store overlapping its address blocks the load
//!   until the store's operands arrive;
//! - otherwise the load goes to the cache.
//!
//! Non-overlapping un-issued stores do not block — perfect memory
//! disambiguation, the standard idealization for trace-driven simulation
//! where every address is architecturally known (`DESIGN.md` §5).
//!
//! The scan is the per-load hot path, so two early-outs sit in front of
//! it: a count of resident stores (loads in a store-free window never
//! scan at all) and a small counting filter over 64-byte address
//! granules (a load whose granules hold no store skips the scan even
//! when stores are resident). Both are conservative — a filter hit only
//! means "scan", never "forward" — so they cannot change the scan's
//! answer, only avoid it.

use crate::types::DynSeq;
use mlpwin_isa::snap::{SnapError, SnapReader, SnapWriter};
use mlpwin_isa::MemRef;
use std::collections::VecDeque;

/// What a load should do, per the disambiguation scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadCheck {
    /// Forward from the youngest older overlapping (issued) store,
    /// identified by its `DynSeq` (so the consumer can inherit its INV
    /// status during runahead).
    Forward(DynSeq),
    /// Wait: an older overlapping store has not produced its data yet.
    Blocked,
    /// Access the cache hierarchy.
    Access,
}

#[derive(Debug, Clone, Copy)]
struct LsqEntry {
    dyn_seq: DynSeq,
    is_store: bool,
    mem: MemRef,
    issued: bool,
}

/// log2 of the address-filter granule (64 bytes: one cache line).
const FILTER_SHIFT: u32 = 6;
/// Number of counting-filter buckets (granule address, low 8 bits).
const FILTER_BUCKETS: usize = 256;

/// The load/store queue.
#[derive(Debug, Clone)]
pub struct Lsq {
    entries: VecDeque<LsqEntry>,
    /// Resident stores (issued or not); loads skip disambiguation
    /// entirely while this is zero.
    stores: usize,
    /// Counting filter: for each resident store, every 64-byte granule
    /// its reference touches increments one bucket. A load whose
    /// granules all read zero provably overlaps no resident store.
    store_filter: [u16; FILTER_BUCKETS],
}

impl Default for Lsq {
    fn default() -> Lsq {
        Lsq {
            entries: VecDeque::new(),
            stores: 0,
            store_filter: [0; FILTER_BUCKETS],
        }
    }
}

/// Calls `f` with the filter bucket of every granule `mem` touches.
/// References are at most a few bytes wide, so this is one bucket, or
/// two when the access straddles a granule boundary.
fn for_each_bucket(mem: &MemRef, mut f: impl FnMut(usize)) {
    let first = mem.addr >> FILTER_SHIFT;
    let last = mem.addr.wrapping_add(mem.size.max(1) as u64 - 1) >> FILTER_SHIFT;
    let mut g = first;
    loop {
        f((g as usize) & (FILTER_BUCKETS - 1));
        if g == last {
            break;
        }
        g += 1;
    }
}

impl Lsq {
    /// Creates an empty queue.
    pub fn new() -> Lsq {
        Lsq::default()
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    fn filter_add(&mut self, mem: &MemRef) {
        for_each_bucket(mem, |b| self.store_filter[b] += 1);
    }

    fn filter_remove(&mut self, mem: &MemRef) {
        for_each_bucket(mem, |b| {
            debug_assert!(self.store_filter[b] > 0, "filter underflow");
            self.store_filter[b] -= 1;
        });
    }

    /// Whether any filter bucket touched by `mem` holds a store.
    fn filter_hit(&self, mem: &MemRef) -> bool {
        let mut hit = false;
        for_each_bucket(mem, |b| hit |= self.store_filter[b] != 0);
        hit
    }

    /// Appends a memory operation (program order).
    ///
    /// # Panics
    ///
    /// Panics if `dyn_seq` is not younger than every current entry.
    pub fn allocate(&mut self, dyn_seq: DynSeq, is_store: bool, mem: MemRef) {
        if let Some(back) = self.entries.back() {
            assert!(back.dyn_seq < dyn_seq, "LSQ allocation out of order");
        }
        if is_store {
            self.stores += 1;
            self.filter_add(&mem);
        }
        self.entries.push_back(LsqEntry {
            dyn_seq,
            is_store,
            mem,
            issued: false,
        });
    }

    /// Marks the entry's address/data as produced (store executed or load
    /// access performed).
    pub fn mark_issued(&mut self, dyn_seq: DynSeq) {
        if let Ok(i) = self.entries.binary_search_by_key(&dyn_seq, |e| e.dyn_seq) {
            self.entries[i].issued = true;
        }
    }

    /// Disambiguation scan for the load `dyn_seq` with reference `mem`.
    pub fn check_load(&self, dyn_seq: DynSeq, mem: &MemRef) -> LoadCheck {
        // Early-outs: no resident store at all, or none in this load's
        // address granules.
        if self.stores == 0 || !self.filter_hit(mem) {
            return LoadCheck::Access;
        }
        // Scan only the entries older than the load (entries are in
        // program order), youngest-first so the nearest store wins.
        let older = self.entries.partition_point(|e| e.dyn_seq < dyn_seq);
        for e in self.entries.range(..older).rev() {
            if e.is_store && e.mem.overlaps(mem) {
                return if e.issued {
                    LoadCheck::Forward(e.dyn_seq)
                } else {
                    LoadCheck::Blocked
                };
            }
        }
        LoadCheck::Access
    }

    /// Removes the committed (oldest) entry.
    ///
    /// # Panics
    ///
    /// Panics if the head is not `dyn_seq` (commit must be in order).
    pub fn commit(&mut self, dyn_seq: DynSeq) {
        let head = self.entries.pop_front().expect("commit from empty LSQ");
        assert_eq!(head.dyn_seq, dyn_seq, "LSQ commit out of order");
        if head.is_store {
            self.stores -= 1;
            self.filter_remove(&head.mem);
        }
    }

    /// Drops every entry younger than `dyn_seq` (squash).
    pub fn squash_younger(&mut self, dyn_seq: DynSeq) {
        while let Some(back) = self.entries.back() {
            if back.dyn_seq > dyn_seq {
                let dropped = self.entries.pop_back().unwrap();
                if dropped.is_store {
                    self.stores -= 1;
                    self.filter_remove(&dropped.mem);
                }
            } else {
                break;
            }
        }
    }

    /// Drops everything (runahead exit).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stores = 0;
        self.store_filter = [0; FILTER_BUCKETS];
    }

    /// Serializes the queue entries; the store count and address filter
    /// are derived state and are rebuilt on restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_seq(self.entries.iter(), |w, e| {
            w.put_u64(e.dyn_seq);
            w.put_bool(e.is_store);
            w.put_u64(e.mem.addr);
            w.put_u8(e.mem.size);
            w.put_bool(e.issued);
        });
    }

    /// Restores the queue written by [`Lsq::save_state`], replaying each
    /// store into the counting filter.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let entries = r.get_seq(|r| {
            let dyn_seq = r.get_u64()?;
            let is_store = r.get_bool()?;
            let addr = r.get_u64()?;
            let offset = r.offset();
            let size = r.get_u8()?;
            if !matches!(size, 1 | 2 | 4 | 8) {
                return Err(SnapError::BadTag {
                    offset,
                    tag: size,
                    what: "LSQ mem size",
                });
            }
            let issued = r.get_bool()?;
            Ok(LsqEntry {
                dyn_seq,
                is_store,
                mem: MemRef { addr, size },
                issued,
            })
        })?;
        self.clear();
        for e in entries {
            if e.is_store {
                self.stores += 1;
                let mem = e.mem;
                self.filter_add(&mem);
            }
            self.entries.push_back(e);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(addr: u64) -> MemRef {
        MemRef::new(addr, 8)
    }

    #[test]
    fn load_with_no_stores_accesses_cache() {
        let mut q = Lsq::new();
        q.allocate(1, false, m(0x100));
        assert_eq!(q.check_load(1, &m(0x100)), LoadCheck::Access);
    }

    #[test]
    fn issued_store_forwards() {
        let mut q = Lsq::new();
        q.allocate(1, true, m(0x100));
        q.allocate(2, false, m(0x100));
        assert_eq!(q.check_load(2, &m(0x100)), LoadCheck::Blocked);
        q.mark_issued(1);
        assert_eq!(q.check_load(2, &m(0x100)), LoadCheck::Forward(1));
    }

    #[test]
    fn nearest_older_store_wins() {
        let mut q = Lsq::new();
        q.allocate(1, true, m(0x100));
        q.mark_issued(1);
        q.allocate(2, true, m(0x100)); // younger, un-issued
        q.allocate(3, false, m(0x100));
        // Store 2 is nearer: load must block on it even though store 1
        // could forward.
        assert_eq!(q.check_load(3, &m(0x100)), LoadCheck::Blocked);
    }

    #[test]
    fn younger_stores_do_not_affect_the_load() {
        let mut q = Lsq::new();
        q.allocate(1, false, m(0x100));
        q.allocate(2, true, m(0x100));
        assert_eq!(q.check_load(1, &m(0x100)), LoadCheck::Access);
    }

    #[test]
    fn disjoint_stores_do_not_block() {
        let mut q = Lsq::new();
        q.allocate(1, true, m(0x200));
        q.allocate(2, false, m(0x100));
        assert_eq!(q.check_load(2, &m(0x100)), LoadCheck::Access);
    }

    #[test]
    fn partial_overlap_blocks() {
        let mut q = Lsq::new();
        q.allocate(1, true, MemRef::new(0x104, 8));
        q.allocate(2, false, MemRef::new(0x100, 8));
        assert_eq!(q.check_load(2, &m(0x100)), LoadCheck::Blocked);
    }

    #[test]
    fn commit_pops_in_order() {
        let mut q = Lsq::new();
        q.allocate(1, false, m(0x100));
        q.allocate(2, true, m(0x108));
        q.commit(1);
        q.commit(2);
        assert_eq!(q.occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn commit_out_of_order_panics() {
        let mut q = Lsq::new();
        q.allocate(1, false, m(0x100));
        q.allocate(2, false, m(0x108));
        q.commit(2);
    }

    #[test]
    fn squash_drops_younger_only() {
        let mut q = Lsq::new();
        q.allocate(1, false, m(0x100));
        q.allocate(2, true, m(0x108));
        q.allocate(3, false, m(0x110));
        q.squash_younger(1);
        assert_eq!(q.occupancy(), 1);
        assert_eq!(q.check_load(5, &m(0x100)), LoadCheck::Access);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn allocation_must_be_in_order() {
        let mut q = Lsq::new();
        q.allocate(5, false, m(0x100));
        q.allocate(3, false, m(0x108));
    }

    #[test]
    fn filter_stays_consistent_through_commit_squash_clear() {
        let mut q = Lsq::new();
        // Committing and squashing stores must re-open the fast path.
        q.allocate(1, true, m(0x100));
        q.allocate(2, true, m(0x300));
        assert_eq!(q.check_load(3, &m(0x100)), LoadCheck::Blocked);
        q.commit(1);
        assert_eq!(
            q.check_load(3, &m(0x100)),
            LoadCheck::Access,
            "committed store must leave the filter"
        );
        q.squash_younger(1);
        assert_eq!(
            q.check_load(3, &m(0x300)),
            LoadCheck::Access,
            "squashed store must leave the filter"
        );
        q.allocate(4, true, m(0x500));
        q.clear();
        assert_eq!(q.occupancy(), 0);
        assert_eq!(q.check_load(9, &m(0x500)), LoadCheck::Access);
    }

    #[test]
    fn filter_bucket_collision_still_scans_and_allows_access() {
        // 0x100 and 0x100 + 256*64 granules collide in the 256-bucket
        // filter; the scan behind the filter must still say Access.
        let mut q = Lsq::new();
        q.allocate(1, true, m(0x100 + 256 * 64));
        assert_eq!(
            q.check_load(2, &m(0x100)),
            LoadCheck::Access,
            "a filter collision may force the scan but not a false block"
        );
    }

    #[test]
    fn straddling_reference_touches_both_granules() {
        // A store crossing a 64-byte boundary must be visible to loads
        // in either granule.
        let mut q = Lsq::new();
        q.allocate(1, true, MemRef::new(0x13c, 8)); // spans 0x100 and 0x140 granules
        assert_eq!(q.check_load(2, &MemRef::new(0x140, 4)), LoadCheck::Blocked);
        assert_eq!(q.check_load(3, &MemRef::new(0x138, 8)), LoadCheck::Blocked);
    }
}
