//! Core simulation statistics.

use mlpwin_isa::snap::{SnapError, SnapReader, SnapWriter};
use mlpwin_isa::Cycle;

/// Where one cycle of execution went. Every simulated cycle is charged
/// to exactly one bucket by the core's accounting pass, so the buckets
/// of [`CoreStats::cpi_stack`] provably sum to [`CoreStats::cycles`]
/// (asserted over every workload profile by `tests/accounting.rs`).
///
/// Attribution is dispatch-centric: a cycle in which at least one
/// instruction entered the window is `Base`; a cycle in which dispatch
/// was blocked is charged to the first blocking condition, refined by
/// what the machine was actually waiting on (a full ROB, IQ or LSQ
/// whose oldest instruction is an in-flight load is a `MemoryStall`,
/// not a capacity stall; an empty fetch queue during mispredict
/// recovery is `BranchRecovery`, not `FetchEmpty`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpiBucket {
    /// At least one instruction dispatched — base/commit-limited work.
    Base = 0,
    /// Dispatch blocked behind a window full of memory-stalled work
    /// (the head of the ROB is an issued, incomplete load).
    MemoryStall = 1,
    /// Dispatch blocked by a full reorder buffer (head not memory-bound).
    RobFull = 2,
    /// Dispatch blocked by a full issue queue.
    IqFull = 3,
    /// Dispatch blocked by a full load/store queue.
    LsqFull = 4,
    /// Allocation stalled by a level-transition penalty.
    Transition = 5,
    /// Allocation stalled waiting for a shrink region to drain.
    ShrinkDrain = 6,
    /// Fetch queue empty while the front end replays a branch-recovery
    /// redirect.
    BranchRecovery = 7,
    /// Fetch queue empty for any other reason (I-cache misses, taken
    /// branches fragmenting fetch groups).
    FetchEmpty = 8,
}

/// Number of [`CpiBucket`] variants (the width of a CPI-stack row).
pub const CPI_BUCKETS: usize = 9;

impl CpiBucket {
    /// Every bucket, in stack-plot order.
    pub const ALL: [CpiBucket; CPI_BUCKETS] = [
        CpiBucket::Base,
        CpiBucket::MemoryStall,
        CpiBucket::RobFull,
        CpiBucket::IqFull,
        CpiBucket::LsqFull,
        CpiBucket::Transition,
        CpiBucket::ShrinkDrain,
        CpiBucket::BranchRecovery,
        CpiBucket::FetchEmpty,
    ];

    /// Decodes a bucket from its discriminant (snapshot restore).
    pub fn from_tag(r: &mut SnapReader<'_>) -> Result<CpiBucket, SnapError> {
        let offset = r.offset();
        let tag = r.get_u8()?;
        CpiBucket::ALL
            .get(tag as usize)
            .copied()
            .ok_or(SnapError::BadTag {
                offset,
                tag,
                what: "CPI bucket",
            })
    }

    /// Stable short label for tables and exports.
    pub fn label(&self) -> &'static str {
        match self {
            CpiBucket::Base => "base",
            CpiBucket::MemoryStall => "mem",
            CpiBucket::RobFull => "rob",
            CpiBucket::IqFull => "iq",
            CpiBucket::LsqFull => "lsq",
            CpiBucket::Transition => "trans",
            CpiBucket::ShrinkDrain => "shrink",
            CpiBucket::BranchRecovery => "brrec",
            CpiBucket::FetchEmpty => "fetch",
        }
    }
}

/// One entry of the interval time series: counters sampled at the end
/// of each fixed-length cycle epoch (enabled by
/// [`CoreConfig::interval_cycles`](crate::CoreConfig)). All fields are
/// integers so the series is bit-exact across runs and thread counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntervalSample {
    /// Measured cycle the epoch ended at (multiples of the epoch length).
    pub end_cycle: Cycle,
    /// Instructions committed during this epoch (per-epoch IPC is
    /// `committed_insts / epoch`).
    pub committed_insts: u64,
    /// Window level at the sample point (0-based).
    pub level: u32,
    /// ROB occupancy at the sample point.
    pub rob_occ: u32,
    /// Issue-queue occupancy at the sample point.
    pub iq_occ: u32,
    /// Load/store-queue occupancy at the sample point.
    pub lsq_occ: u32,
    /// Outstanding cache misses (MSHR occupancy) at the sample point.
    pub outstanding_misses: u32,
}

impl IntervalSample {
    /// Serializes one sample.
    pub fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.end_cycle);
        w.put_u64(self.committed_insts);
        w.put_u32(self.level);
        w.put_u32(self.rob_occ);
        w.put_u32(self.iq_occ);
        w.put_u32(self.lsq_occ);
        w.put_u32(self.outstanding_misses);
    }

    /// Decodes a sample written by [`IntervalSample::encode`].
    pub fn decode(r: &mut SnapReader<'_>) -> Result<IntervalSample, SnapError> {
        Ok(IntervalSample {
            end_cycle: r.get_u64()?,
            committed_insts: r.get_u64()?,
            level: r.get_u32()?,
            rob_occ: r.get_u32()?,
            iq_occ: r.get_u32()?,
            lsq_occ: r.get_u32()?,
            outstanding_misses: r.get_u32()?,
        })
    }
}

/// Counters accumulated over a simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed-path instructions retired.
    pub committed_insts: u64,
    /// Committed loads.
    pub committed_loads: u64,
    /// Committed stores.
    pub committed_stores: u64,
    /// Committed control transfers.
    pub committed_branches: u64,
    /// Committed conditional branches.
    pub committed_cond_branches: u64,
    /// Committed branches that had been mispredicted.
    pub committed_mispredicts: u64,
    /// Summed end-to-end latency of committed loads (cycles).
    pub load_latency_sum: u64,

    /// Cycles spent at each resource level (index 0 = level 1) — Fig. 8.
    pub level_cycles: Vec<u64>,
    /// Per-level CPI stack: `cpi_stack[level][bucket]` cycles, indexed
    /// by [`CpiBucket`]. Each row sums to `level_cycles[level]`; the
    /// whole matrix sums to `cycles` (the conservation invariant).
    pub cpi_stack: Vec<[u64; CPI_BUCKETS]>,
    /// Interval time series; empty unless
    /// [`CoreConfig::interval_cycles`](crate::CoreConfig) is set.
    pub intervals: Vec<IntervalSample>,
    /// Completed enlargements.
    pub transitions_up: u64,
    /// Completed shrinks.
    pub transitions_down: u64,

    /// Cycles allocation was stalled by a level-transition penalty.
    pub stall_transition: u64,
    /// Cycles allocation was stalled waiting for a shrink region to drain.
    pub stall_shrink_wait: u64,
    /// Cycles allocation was blocked by a full ROB.
    pub stall_rob_full: u64,
    /// Cycles allocation was blocked by a full issue queue.
    pub stall_iq_full: u64,
    /// Cycles allocation was blocked by a full LSQ.
    pub stall_lsq_full: u64,
    /// Cycles nothing was ready to dispatch (fetch-limited).
    pub stall_fetch_empty: u64,

    /// Total instructions dispatched into the window (committed-path,
    /// wrong-path and runahead replays alike) — the energy model's
    /// activity base.
    pub dispatched_total: u64,
    /// Total instructions issued to function units.
    pub issued_total: u64,
    /// Pipeline squashes from branch recovery.
    pub squashes: u64,
    /// Wrong-path instructions that entered the pipeline.
    pub wrongpath_dispatched: u64,

    /// Runahead episodes entered.
    pub runahead_episodes: u64,
    /// Cycles spent in runahead mode.
    pub runahead_cycles: u64,
    /// Episodes suppressed by the cause status table.
    pub runahead_suppressed: u64,
    /// Entries skipped because too little of the miss latency remained.
    pub runahead_short_skips: u64,
    /// Episodes that overlapped at least one additional L2 miss.
    pub runahead_useful_episodes: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_insts as f64 / self.cycles as f64
        }
    }

    /// Average end-to-end latency of committed loads (Table 3).
    pub fn avg_load_latency(&self) -> f64 {
        if self.committed_loads == 0 {
            0.0
        } else {
            self.load_latency_sum as f64 / self.committed_loads as f64
        }
    }

    /// Committed instructions per committed misprediction (Table 5).
    /// Returns `committed_insts` when no branch mispredicted.
    pub fn mispredict_distance(&self) -> f64 {
        if self.committed_mispredicts == 0 {
            self.committed_insts as f64
        } else {
            self.committed_insts as f64 / self.committed_mispredicts as f64
        }
    }

    /// Fraction of cycles spent at `level` (0-based) — Fig. 8 series.
    pub fn level_residency(&self, level: usize) -> f64 {
        if self.cycles == 0 || level >= self.level_cycles.len() {
            0.0
        } else {
            self.level_cycles[level] as f64 / self.cycles as f64
        }
    }

    /// Cycles charged to `bucket`, summed across levels.
    pub fn cpi_bucket_cycles(&self, bucket: CpiBucket) -> u64 {
        self.cpi_stack.iter().map(|row| row[bucket as usize]).sum()
    }

    /// Every cycle the CPI stack accounts for; equals `cycles` by the
    /// conservation invariant.
    pub fn cpi_stack_cycles(&self) -> u64 {
        self.cpi_stack.iter().flatten().sum()
    }

    /// Fraction of all cycles charged to `bucket` (0 when no cycles ran).
    pub fn cpi_fraction(&self, bucket: CpiBucket) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.cpi_bucket_cycles(bucket) as f64 / self.cycles as f64
        }
    }

    /// Serializes every counter, the per-level CPI stack and the
    /// interval time series.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.cycles);
        w.put_u64(self.committed_insts);
        w.put_u64(self.committed_loads);
        w.put_u64(self.committed_stores);
        w.put_u64(self.committed_branches);
        w.put_u64(self.committed_cond_branches);
        w.put_u64(self.committed_mispredicts);
        w.put_u64(self.load_latency_sum);
        w.put_u64_slice(&self.level_cycles);
        w.put_seq(self.cpi_stack.iter(), |w, row| {
            for c in row {
                w.put_u64(*c);
            }
        });
        w.put_seq(self.intervals.iter(), |w, s| s.encode(w));
        w.put_u64(self.transitions_up);
        w.put_u64(self.transitions_down);
        w.put_u64(self.stall_transition);
        w.put_u64(self.stall_shrink_wait);
        w.put_u64(self.stall_rob_full);
        w.put_u64(self.stall_iq_full);
        w.put_u64(self.stall_lsq_full);
        w.put_u64(self.stall_fetch_empty);
        w.put_u64(self.dispatched_total);
        w.put_u64(self.issued_total);
        w.put_u64(self.squashes);
        w.put_u64(self.wrongpath_dispatched);
        w.put_u64(self.runahead_episodes);
        w.put_u64(self.runahead_cycles);
        w.put_u64(self.runahead_suppressed);
        w.put_u64(self.runahead_short_skips);
        w.put_u64(self.runahead_useful_episodes);
    }

    /// Restores the counters written by [`CoreStats::save_state`] into
    /// stats shaped for the same level ladder.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cycles = r.get_u64()?;
        self.committed_insts = r.get_u64()?;
        self.committed_loads = r.get_u64()?;
        self.committed_stores = r.get_u64()?;
        self.committed_branches = r.get_u64()?;
        self.committed_cond_branches = r.get_u64()?;
        self.committed_mispredicts = r.get_u64()?;
        self.load_latency_sum = r.get_u64()?;
        let level_cycles = r.get_u64_vec()?;
        if level_cycles.len() != self.level_cycles.len() {
            return Err(SnapError::Mismatch {
                what: "level-cycle ladder",
            });
        }
        self.level_cycles = level_cycles;
        let cpi_stack = r.get_seq(|r| {
            let mut row = [0u64; CPI_BUCKETS];
            for c in &mut row {
                *c = r.get_u64()?;
            }
            Ok(row)
        })?;
        if cpi_stack.len() != self.cpi_stack.len() {
            return Err(SnapError::Mismatch {
                what: "CPI-stack ladder",
            });
        }
        self.cpi_stack = cpi_stack;
        self.intervals = r.get_seq(IntervalSample::decode)?;
        self.transitions_up = r.get_u64()?;
        self.transitions_down = r.get_u64()?;
        self.stall_transition = r.get_u64()?;
        self.stall_shrink_wait = r.get_u64()?;
        self.stall_rob_full = r.get_u64()?;
        self.stall_iq_full = r.get_u64()?;
        self.stall_lsq_full = r.get_u64()?;
        self.stall_fetch_empty = r.get_u64()?;
        self.dispatched_total = r.get_u64()?;
        self.issued_total = r.get_u64()?;
        self.squashes = r.get_u64()?;
        self.wrongpath_dispatched = r.get_u64()?;
        self.runahead_episodes = r.get_u64()?;
        self.runahead_cycles = r.get_u64()?;
        self.runahead_suppressed = r.get_u64()?;
        self.runahead_short_skips = r.get_u64()?;
        self.runahead_useful_episodes = r.get_u64()?;
        Ok(())
    }
}

/// How a [`StatsDelta`] subtraction can fail.
///
/// Interval stitching subtracts boundary statistics captured by two
/// different executions of the same run. Every counter is monotone
/// within a phase, so a well-formed `(start, end)` pair never
/// underflows — but a malformed pair (reversed boundaries, stats from
/// different specs, a boundary that landed past its cadence point
/// because a misaligned fast-forward skip jumped over it) would wrap
/// `u64` arithmetic into ~2^64 garbage that silently corrupts every
/// stitched total downstream. The checked subtraction turns each of
/// those into a typed, attributable error instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// `end` is smaller than `start` on the named counter — the
    /// boundaries are reversed or come from different executions.
    Underflow {
        /// The counter that would have wrapped.
        counter: &'static str,
    },
    /// The two boundaries disagree on a vector shape (level ladder or
    /// CPI-stack rows) — they were measured on different machines.
    ShapeMismatch {
        /// Which vector disagreed.
        what: &'static str,
    },
    /// `end`'s interval time series does not extend `start`'s — the
    /// samples already taken by `start` must be a bit-identical prefix
    /// of `end`'s, or the two captures are not points on one run.
    SeriesMismatch,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Underflow { counter } => write!(
                f,
                "stats delta underflow on `{counter}`: end precedes start \
                 (reversed, mismatched, or fast-forward-overshot boundaries)"
            ),
            DeltaError::ShapeMismatch { what } => {
                write!(f, "stats delta shape mismatch on {what}")
            }
            DeltaError::SeriesMismatch => write!(
                f,
                "stats delta interval series mismatch: end does not extend start"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// The statistics accumulated between two boundary states of one run:
/// `end − start`, computed counter-by-counter with checked arithmetic.
///
/// This is the unit the interval-parallel stitcher works in. Each
/// worker simulates one snapshot-delimited interval and reports its
/// delta; summing the deltas onto the interval-0 base reconstructs the
/// serial run's totals bit-for-bit (the CPI-stack conservation
/// invariant survives because it holds for both boundaries, hence for
/// their difference). The wrapped counters are deliberately private:
/// a delta is constructed by [`StatsDelta::between`] (which validates)
/// or [`StatsDelta::from_raw`] (decode paths), never field-by-field.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsDelta {
    stats: CoreStats,
}

/// Subtracts one scalar counter, naming it on underflow.
fn sub_counter(counter: &'static str, end: u64, start: u64) -> Result<u64, DeltaError> {
    end.checked_sub(start)
        .ok_or(DeltaError::Underflow { counter })
}

impl StatsDelta {
    /// Computes `end − start` with checked subtraction on every
    /// counter.
    ///
    /// # Errors
    ///
    /// [`DeltaError::Underflow`] when any counter decreased,
    /// [`DeltaError::ShapeMismatch`] when the level ladders differ, and
    /// [`DeltaError::SeriesMismatch`] when `end`'s interval series is
    /// not an extension of `start`'s.
    pub fn between(start: &CoreStats, end: &CoreStats) -> Result<StatsDelta, DeltaError> {
        if start.level_cycles.len() != end.level_cycles.len() {
            return Err(DeltaError::ShapeMismatch {
                what: "level-cycle ladder",
            });
        }
        if start.cpi_stack.len() != end.cpi_stack.len() {
            return Err(DeltaError::ShapeMismatch {
                what: "CPI-stack ladder",
            });
        }
        if end.intervals.len() < start.intervals.len()
            || end.intervals[..start.intervals.len()] != start.intervals[..]
        {
            return Err(DeltaError::SeriesMismatch);
        }
        let mut level_cycles = Vec::with_capacity(end.level_cycles.len());
        for (e, s) in end.level_cycles.iter().zip(&start.level_cycles) {
            level_cycles.push(sub_counter("level_cycles", *e, *s)?);
        }
        let mut cpi_stack = Vec::with_capacity(end.cpi_stack.len());
        for (erow, srow) in end.cpi_stack.iter().zip(&start.cpi_stack) {
            let mut row = [0u64; CPI_BUCKETS];
            for (d, (e, s)) in row.iter_mut().zip(erow.iter().zip(srow.iter())) {
                *d = sub_counter("cpi_stack", *e, *s)?;
            }
            cpi_stack.push(row);
        }
        Ok(StatsDelta {
            stats: CoreStats {
                cycles: sub_counter("cycles", end.cycles, start.cycles)?,
                committed_insts: sub_counter(
                    "committed_insts",
                    end.committed_insts,
                    start.committed_insts,
                )?,
                committed_loads: sub_counter(
                    "committed_loads",
                    end.committed_loads,
                    start.committed_loads,
                )?,
                committed_stores: sub_counter(
                    "committed_stores",
                    end.committed_stores,
                    start.committed_stores,
                )?,
                committed_branches: sub_counter(
                    "committed_branches",
                    end.committed_branches,
                    start.committed_branches,
                )?,
                committed_cond_branches: sub_counter(
                    "committed_cond_branches",
                    end.committed_cond_branches,
                    start.committed_cond_branches,
                )?,
                committed_mispredicts: sub_counter(
                    "committed_mispredicts",
                    end.committed_mispredicts,
                    start.committed_mispredicts,
                )?,
                load_latency_sum: sub_counter(
                    "load_latency_sum",
                    end.load_latency_sum,
                    start.load_latency_sum,
                )?,
                level_cycles,
                cpi_stack,
                intervals: end.intervals[start.intervals.len()..].to_vec(),
                transitions_up: sub_counter(
                    "transitions_up",
                    end.transitions_up,
                    start.transitions_up,
                )?,
                transitions_down: sub_counter(
                    "transitions_down",
                    end.transitions_down,
                    start.transitions_down,
                )?,
                stall_transition: sub_counter(
                    "stall_transition",
                    end.stall_transition,
                    start.stall_transition,
                )?,
                stall_shrink_wait: sub_counter(
                    "stall_shrink_wait",
                    end.stall_shrink_wait,
                    start.stall_shrink_wait,
                )?,
                stall_rob_full: sub_counter(
                    "stall_rob_full",
                    end.stall_rob_full,
                    start.stall_rob_full,
                )?,
                stall_iq_full: sub_counter(
                    "stall_iq_full",
                    end.stall_iq_full,
                    start.stall_iq_full,
                )?,
                stall_lsq_full: sub_counter(
                    "stall_lsq_full",
                    end.stall_lsq_full,
                    start.stall_lsq_full,
                )?,
                stall_fetch_empty: sub_counter(
                    "stall_fetch_empty",
                    end.stall_fetch_empty,
                    start.stall_fetch_empty,
                )?,
                dispatched_total: sub_counter(
                    "dispatched_total",
                    end.dispatched_total,
                    start.dispatched_total,
                )?,
                issued_total: sub_counter("issued_total", end.issued_total, start.issued_total)?,
                squashes: sub_counter("squashes", end.squashes, start.squashes)?,
                wrongpath_dispatched: sub_counter(
                    "wrongpath_dispatched",
                    end.wrongpath_dispatched,
                    start.wrongpath_dispatched,
                )?,
                runahead_episodes: sub_counter(
                    "runahead_episodes",
                    end.runahead_episodes,
                    start.runahead_episodes,
                )?,
                runahead_cycles: sub_counter(
                    "runahead_cycles",
                    end.runahead_cycles,
                    start.runahead_cycles,
                )?,
                runahead_suppressed: sub_counter(
                    "runahead_suppressed",
                    end.runahead_suppressed,
                    start.runahead_suppressed,
                )?,
                runahead_short_skips: sub_counter(
                    "runahead_short_skips",
                    end.runahead_short_skips,
                    start.runahead_short_skips,
                )?,
                runahead_useful_episodes: sub_counter(
                    "runahead_useful_episodes",
                    end.runahead_useful_episodes,
                    start.runahead_useful_episodes,
                )?,
            },
        })
    }

    /// Wraps already-validated per-interval counters (journal decode);
    /// the caller vouches that they came from [`StatsDelta::between`].
    pub fn from_raw(stats: CoreStats) -> StatsDelta {
        StatsDelta { stats }
    }

    /// The per-interval counters, shaped exactly like [`CoreStats`].
    pub fn as_stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Cycles covered by this delta.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// Instructions committed within this delta.
    pub fn committed_insts(&self) -> u64 {
        self.stats.committed_insts
    }

    /// Adds this delta onto accumulated totals: the stitcher's merge
    /// step. Scalars add, vectors add element-wise, and the interval
    /// series appends — so `base + Σ deltas` rebuilds the serial stats.
    ///
    /// # Errors
    ///
    /// [`DeltaError::ShapeMismatch`] when the ladders disagree.
    pub fn apply_to(&self, total: &mut CoreStats) -> Result<(), DeltaError> {
        let d = &self.stats;
        if total.level_cycles.len() != d.level_cycles.len() {
            return Err(DeltaError::ShapeMismatch {
                what: "level-cycle ladder",
            });
        }
        if total.cpi_stack.len() != d.cpi_stack.len() {
            return Err(DeltaError::ShapeMismatch {
                what: "CPI-stack ladder",
            });
        }
        total.cycles += d.cycles;
        total.committed_insts += d.committed_insts;
        total.committed_loads += d.committed_loads;
        total.committed_stores += d.committed_stores;
        total.committed_branches += d.committed_branches;
        total.committed_cond_branches += d.committed_cond_branches;
        total.committed_mispredicts += d.committed_mispredicts;
        total.load_latency_sum += d.load_latency_sum;
        for (t, v) in total.level_cycles.iter_mut().zip(&d.level_cycles) {
            *t += v;
        }
        for (trow, drow) in total.cpi_stack.iter_mut().zip(&d.cpi_stack) {
            for (t, v) in trow.iter_mut().zip(drow.iter()) {
                *t += v;
            }
        }
        total.intervals.extend(d.intervals.iter().copied());
        total.transitions_up += d.transitions_up;
        total.transitions_down += d.transitions_down;
        total.stall_transition += d.stall_transition;
        total.stall_shrink_wait += d.stall_shrink_wait;
        total.stall_rob_full += d.stall_rob_full;
        total.stall_iq_full += d.stall_iq_full;
        total.stall_lsq_full += d.stall_lsq_full;
        total.stall_fetch_empty += d.stall_fetch_empty;
        total.dispatched_total += d.dispatched_total;
        total.issued_total += d.issued_total;
        total.squashes += d.squashes;
        total.wrongpath_dispatched += d.wrongpath_dispatched;
        total.runahead_episodes += d.runahead_episodes;
        total.runahead_cycles += d.runahead_cycles;
        total.runahead_suppressed += d.runahead_suppressed;
        total.runahead_short_skips += d.runahead_short_skips;
        total.runahead_useful_episodes += d.runahead_useful_episodes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = CoreStats {
            cycles: 1000,
            committed_insts: 1500,
            committed_loads: 100,
            load_latency_sum: 700,
            committed_mispredicts: 5,
            level_cycles: vec![600, 300, 100],
            ..Default::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.avg_load_latency() - 7.0).abs() < 1e-12);
        assert!((s.mispredict_distance() - 300.0).abs() < 1e-12);
        assert!((s.level_residency(0) - 0.6).abs() < 1e-12);
        assert!((s.level_residency(2) - 0.1).abs() < 1e-12);
        assert_eq!(s.level_residency(9), 0.0);
    }

    #[test]
    fn zero_division_guards() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.avg_load_latency(), 0.0);
        assert_eq!(s.mispredict_distance(), 0.0);
        assert_eq!(s.level_residency(0), 0.0);
        assert_eq!(s.cpi_fraction(CpiBucket::Base), 0.0);
        assert_eq!(s.cpi_stack_cycles(), 0);
    }

    #[test]
    fn cpi_stack_accessors_sum_across_levels() {
        let mut row0 = [0u64; CPI_BUCKETS];
        row0[CpiBucket::Base as usize] = 60;
        row0[CpiBucket::MemoryStall as usize] = 20;
        let mut row1 = [0u64; CPI_BUCKETS];
        row1[CpiBucket::Base as usize] = 15;
        row1[CpiBucket::FetchEmpty as usize] = 5;
        let s = CoreStats {
            cycles: 100,
            level_cycles: vec![80, 20],
            cpi_stack: vec![row0, row1],
            ..Default::default()
        };
        assert_eq!(s.cpi_bucket_cycles(CpiBucket::Base), 75);
        assert_eq!(s.cpi_stack_cycles(), 100);
        assert!((s.cpi_fraction(CpiBucket::MemoryStall) - 0.2).abs() < 1e-12);
        assert_eq!(s.cpi_bucket_cycles(CpiBucket::RobFull), 0);
    }

    fn boundary_pair() -> (CoreStats, CoreStats) {
        let start = CoreStats {
            cycles: 100,
            committed_insts: 40,
            level_cycles: vec![60, 40],
            cpi_stack: vec![[10; CPI_BUCKETS], [0; CPI_BUCKETS]],
            intervals: vec![IntervalSample {
                end_cycle: 50,
                committed_insts: 20,
                ..Default::default()
            }],
            stall_rob_full: 7,
            ..Default::default()
        };
        let mut end = start.clone();
        end.cycles = 250;
        end.committed_insts = 90;
        end.level_cycles = vec![150, 100];
        end.cpi_stack = vec![[22; CPI_BUCKETS], [3; CPI_BUCKETS]];
        end.intervals.push(IntervalSample {
            end_cycle: 150,
            committed_insts: 33,
            ..Default::default()
        });
        end.stall_rob_full = 11;
        (start, end)
    }

    #[test]
    fn delta_between_and_apply_round_trip() {
        let (start, end) = boundary_pair();
        let delta = StatsDelta::between(&start, &end).unwrap();
        assert_eq!(delta.cycles(), 150);
        assert_eq!(delta.committed_insts(), 50);
        assert_eq!(delta.as_stats().intervals.len(), 1);
        assert_eq!(delta.as_stats().stall_rob_full, 4);
        let mut total = start.clone();
        delta.apply_to(&mut total).unwrap();
        assert_eq!(total, end);
    }

    #[test]
    fn delta_refuses_reversed_boundaries() {
        let (start, end) = boundary_pair();
        let err = StatsDelta::between(&end, &start).unwrap_err();
        assert!(matches!(err, DeltaError::SeriesMismatch));
        // Strip the series so the scalar check is what fires.
        let (mut start, mut end) = boundary_pair();
        start.intervals.clear();
        end.intervals.clear();
        let err = StatsDelta::between(&end, &start).unwrap_err();
        assert!(matches!(err, DeltaError::Underflow { .. }), "{err:?}");
    }

    #[test]
    fn delta_refuses_mismatched_shapes_and_series() {
        let (start, mut end) = boundary_pair();
        end.level_cycles.push(0);
        assert!(matches!(
            StatsDelta::between(&start, &end),
            Err(DeltaError::ShapeMismatch { .. })
        ));
        let (start, mut end) = boundary_pair();
        end.intervals[0].committed_insts += 1; // prefix no longer bit-identical
        assert_eq!(
            StatsDelta::between(&start, &end),
            Err(DeltaError::SeriesMismatch)
        );
    }

    #[test]
    fn bucket_labels_are_unique() {
        let mut labels: Vec<&str> = CpiBucket::ALL.iter().map(CpiBucket::label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), CPI_BUCKETS);
    }
}
