//! Core simulation statistics.

use mlpwin_isa::snap::{SnapError, SnapReader, SnapWriter};
use mlpwin_isa::Cycle;

/// Where one cycle of execution went. Every simulated cycle is charged
/// to exactly one bucket by the core's accounting pass, so the buckets
/// of [`CoreStats::cpi_stack`] provably sum to [`CoreStats::cycles`]
/// (asserted over every workload profile by `tests/accounting.rs`).
///
/// Attribution is dispatch-centric: a cycle in which at least one
/// instruction entered the window is `Base`; a cycle in which dispatch
/// was blocked is charged to the first blocking condition, refined by
/// what the machine was actually waiting on (a full ROB, IQ or LSQ
/// whose oldest instruction is an in-flight load is a `MemoryStall`,
/// not a capacity stall; an empty fetch queue during mispredict
/// recovery is `BranchRecovery`, not `FetchEmpty`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpiBucket {
    /// At least one instruction dispatched — base/commit-limited work.
    Base = 0,
    /// Dispatch blocked behind a window full of memory-stalled work
    /// (the head of the ROB is an issued, incomplete load).
    MemoryStall = 1,
    /// Dispatch blocked by a full reorder buffer (head not memory-bound).
    RobFull = 2,
    /// Dispatch blocked by a full issue queue.
    IqFull = 3,
    /// Dispatch blocked by a full load/store queue.
    LsqFull = 4,
    /// Allocation stalled by a level-transition penalty.
    Transition = 5,
    /// Allocation stalled waiting for a shrink region to drain.
    ShrinkDrain = 6,
    /// Fetch queue empty while the front end replays a branch-recovery
    /// redirect.
    BranchRecovery = 7,
    /// Fetch queue empty for any other reason (I-cache misses, taken
    /// branches fragmenting fetch groups).
    FetchEmpty = 8,
}

/// Number of [`CpiBucket`] variants (the width of a CPI-stack row).
pub const CPI_BUCKETS: usize = 9;

impl CpiBucket {
    /// Every bucket, in stack-plot order.
    pub const ALL: [CpiBucket; CPI_BUCKETS] = [
        CpiBucket::Base,
        CpiBucket::MemoryStall,
        CpiBucket::RobFull,
        CpiBucket::IqFull,
        CpiBucket::LsqFull,
        CpiBucket::Transition,
        CpiBucket::ShrinkDrain,
        CpiBucket::BranchRecovery,
        CpiBucket::FetchEmpty,
    ];

    /// Decodes a bucket from its discriminant (snapshot restore).
    pub fn from_tag(r: &mut SnapReader<'_>) -> Result<CpiBucket, SnapError> {
        let offset = r.offset();
        let tag = r.get_u8()?;
        CpiBucket::ALL
            .get(tag as usize)
            .copied()
            .ok_or(SnapError::BadTag {
                offset,
                tag,
                what: "CPI bucket",
            })
    }

    /// Stable short label for tables and exports.
    pub fn label(&self) -> &'static str {
        match self {
            CpiBucket::Base => "base",
            CpiBucket::MemoryStall => "mem",
            CpiBucket::RobFull => "rob",
            CpiBucket::IqFull => "iq",
            CpiBucket::LsqFull => "lsq",
            CpiBucket::Transition => "trans",
            CpiBucket::ShrinkDrain => "shrink",
            CpiBucket::BranchRecovery => "brrec",
            CpiBucket::FetchEmpty => "fetch",
        }
    }
}

/// One entry of the interval time series: counters sampled at the end
/// of each fixed-length cycle epoch (enabled by
/// [`CoreConfig::interval_cycles`](crate::CoreConfig)). All fields are
/// integers so the series is bit-exact across runs and thread counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntervalSample {
    /// Measured cycle the epoch ended at (multiples of the epoch length).
    pub end_cycle: Cycle,
    /// Instructions committed during this epoch (per-epoch IPC is
    /// `committed_insts / epoch`).
    pub committed_insts: u64,
    /// Window level at the sample point (0-based).
    pub level: u32,
    /// ROB occupancy at the sample point.
    pub rob_occ: u32,
    /// Issue-queue occupancy at the sample point.
    pub iq_occ: u32,
    /// Load/store-queue occupancy at the sample point.
    pub lsq_occ: u32,
    /// Outstanding cache misses (MSHR occupancy) at the sample point.
    pub outstanding_misses: u32,
}

impl IntervalSample {
    /// Serializes one sample.
    pub fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.end_cycle);
        w.put_u64(self.committed_insts);
        w.put_u32(self.level);
        w.put_u32(self.rob_occ);
        w.put_u32(self.iq_occ);
        w.put_u32(self.lsq_occ);
        w.put_u32(self.outstanding_misses);
    }

    /// Decodes a sample written by [`IntervalSample::encode`].
    pub fn decode(r: &mut SnapReader<'_>) -> Result<IntervalSample, SnapError> {
        Ok(IntervalSample {
            end_cycle: r.get_u64()?,
            committed_insts: r.get_u64()?,
            level: r.get_u32()?,
            rob_occ: r.get_u32()?,
            iq_occ: r.get_u32()?,
            lsq_occ: r.get_u32()?,
            outstanding_misses: r.get_u32()?,
        })
    }
}

/// Counters accumulated over a simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed-path instructions retired.
    pub committed_insts: u64,
    /// Committed loads.
    pub committed_loads: u64,
    /// Committed stores.
    pub committed_stores: u64,
    /// Committed control transfers.
    pub committed_branches: u64,
    /// Committed conditional branches.
    pub committed_cond_branches: u64,
    /// Committed branches that had been mispredicted.
    pub committed_mispredicts: u64,
    /// Summed end-to-end latency of committed loads (cycles).
    pub load_latency_sum: u64,

    /// Cycles spent at each resource level (index 0 = level 1) — Fig. 8.
    pub level_cycles: Vec<u64>,
    /// Per-level CPI stack: `cpi_stack[level][bucket]` cycles, indexed
    /// by [`CpiBucket`]. Each row sums to `level_cycles[level]`; the
    /// whole matrix sums to `cycles` (the conservation invariant).
    pub cpi_stack: Vec<[u64; CPI_BUCKETS]>,
    /// Interval time series; empty unless
    /// [`CoreConfig::interval_cycles`](crate::CoreConfig) is set.
    pub intervals: Vec<IntervalSample>,
    /// Completed enlargements.
    pub transitions_up: u64,
    /// Completed shrinks.
    pub transitions_down: u64,

    /// Cycles allocation was stalled by a level-transition penalty.
    pub stall_transition: u64,
    /// Cycles allocation was stalled waiting for a shrink region to drain.
    pub stall_shrink_wait: u64,
    /// Cycles allocation was blocked by a full ROB.
    pub stall_rob_full: u64,
    /// Cycles allocation was blocked by a full issue queue.
    pub stall_iq_full: u64,
    /// Cycles allocation was blocked by a full LSQ.
    pub stall_lsq_full: u64,
    /// Cycles nothing was ready to dispatch (fetch-limited).
    pub stall_fetch_empty: u64,

    /// Total instructions dispatched into the window (committed-path,
    /// wrong-path and runahead replays alike) — the energy model's
    /// activity base.
    pub dispatched_total: u64,
    /// Total instructions issued to function units.
    pub issued_total: u64,
    /// Pipeline squashes from branch recovery.
    pub squashes: u64,
    /// Wrong-path instructions that entered the pipeline.
    pub wrongpath_dispatched: u64,

    /// Runahead episodes entered.
    pub runahead_episodes: u64,
    /// Cycles spent in runahead mode.
    pub runahead_cycles: u64,
    /// Episodes suppressed by the cause status table.
    pub runahead_suppressed: u64,
    /// Entries skipped because too little of the miss latency remained.
    pub runahead_short_skips: u64,
    /// Episodes that overlapped at least one additional L2 miss.
    pub runahead_useful_episodes: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_insts as f64 / self.cycles as f64
        }
    }

    /// Average end-to-end latency of committed loads (Table 3).
    pub fn avg_load_latency(&self) -> f64 {
        if self.committed_loads == 0 {
            0.0
        } else {
            self.load_latency_sum as f64 / self.committed_loads as f64
        }
    }

    /// Committed instructions per committed misprediction (Table 5).
    /// Returns `committed_insts` when no branch mispredicted.
    pub fn mispredict_distance(&self) -> f64 {
        if self.committed_mispredicts == 0 {
            self.committed_insts as f64
        } else {
            self.committed_insts as f64 / self.committed_mispredicts as f64
        }
    }

    /// Fraction of cycles spent at `level` (0-based) — Fig. 8 series.
    pub fn level_residency(&self, level: usize) -> f64 {
        if self.cycles == 0 || level >= self.level_cycles.len() {
            0.0
        } else {
            self.level_cycles[level] as f64 / self.cycles as f64
        }
    }

    /// Cycles charged to `bucket`, summed across levels.
    pub fn cpi_bucket_cycles(&self, bucket: CpiBucket) -> u64 {
        self.cpi_stack.iter().map(|row| row[bucket as usize]).sum()
    }

    /// Every cycle the CPI stack accounts for; equals `cycles` by the
    /// conservation invariant.
    pub fn cpi_stack_cycles(&self) -> u64 {
        self.cpi_stack.iter().flatten().sum()
    }

    /// Fraction of all cycles charged to `bucket` (0 when no cycles ran).
    pub fn cpi_fraction(&self, bucket: CpiBucket) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.cpi_bucket_cycles(bucket) as f64 / self.cycles as f64
        }
    }

    /// Serializes every counter, the per-level CPI stack and the
    /// interval time series.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.cycles);
        w.put_u64(self.committed_insts);
        w.put_u64(self.committed_loads);
        w.put_u64(self.committed_stores);
        w.put_u64(self.committed_branches);
        w.put_u64(self.committed_cond_branches);
        w.put_u64(self.committed_mispredicts);
        w.put_u64(self.load_latency_sum);
        w.put_u64_slice(&self.level_cycles);
        w.put_seq(self.cpi_stack.iter(), |w, row| {
            for c in row {
                w.put_u64(*c);
            }
        });
        w.put_seq(self.intervals.iter(), |w, s| s.encode(w));
        w.put_u64(self.transitions_up);
        w.put_u64(self.transitions_down);
        w.put_u64(self.stall_transition);
        w.put_u64(self.stall_shrink_wait);
        w.put_u64(self.stall_rob_full);
        w.put_u64(self.stall_iq_full);
        w.put_u64(self.stall_lsq_full);
        w.put_u64(self.stall_fetch_empty);
        w.put_u64(self.dispatched_total);
        w.put_u64(self.issued_total);
        w.put_u64(self.squashes);
        w.put_u64(self.wrongpath_dispatched);
        w.put_u64(self.runahead_episodes);
        w.put_u64(self.runahead_cycles);
        w.put_u64(self.runahead_suppressed);
        w.put_u64(self.runahead_short_skips);
        w.put_u64(self.runahead_useful_episodes);
    }

    /// Restores the counters written by [`CoreStats::save_state`] into
    /// stats shaped for the same level ladder.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cycles = r.get_u64()?;
        self.committed_insts = r.get_u64()?;
        self.committed_loads = r.get_u64()?;
        self.committed_stores = r.get_u64()?;
        self.committed_branches = r.get_u64()?;
        self.committed_cond_branches = r.get_u64()?;
        self.committed_mispredicts = r.get_u64()?;
        self.load_latency_sum = r.get_u64()?;
        let level_cycles = r.get_u64_vec()?;
        if level_cycles.len() != self.level_cycles.len() {
            return Err(SnapError::Mismatch {
                what: "level-cycle ladder",
            });
        }
        self.level_cycles = level_cycles;
        let cpi_stack = r.get_seq(|r| {
            let mut row = [0u64; CPI_BUCKETS];
            for c in &mut row {
                *c = r.get_u64()?;
            }
            Ok(row)
        })?;
        if cpi_stack.len() != self.cpi_stack.len() {
            return Err(SnapError::Mismatch {
                what: "CPI-stack ladder",
            });
        }
        self.cpi_stack = cpi_stack;
        self.intervals = r.get_seq(IntervalSample::decode)?;
        self.transitions_up = r.get_u64()?;
        self.transitions_down = r.get_u64()?;
        self.stall_transition = r.get_u64()?;
        self.stall_shrink_wait = r.get_u64()?;
        self.stall_rob_full = r.get_u64()?;
        self.stall_iq_full = r.get_u64()?;
        self.stall_lsq_full = r.get_u64()?;
        self.stall_fetch_empty = r.get_u64()?;
        self.dispatched_total = r.get_u64()?;
        self.issued_total = r.get_u64()?;
        self.squashes = r.get_u64()?;
        self.wrongpath_dispatched = r.get_u64()?;
        self.runahead_episodes = r.get_u64()?;
        self.runahead_cycles = r.get_u64()?;
        self.runahead_suppressed = r.get_u64()?;
        self.runahead_short_skips = r.get_u64()?;
        self.runahead_useful_episodes = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = CoreStats {
            cycles: 1000,
            committed_insts: 1500,
            committed_loads: 100,
            load_latency_sum: 700,
            committed_mispredicts: 5,
            level_cycles: vec![600, 300, 100],
            ..Default::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.avg_load_latency() - 7.0).abs() < 1e-12);
        assert!((s.mispredict_distance() - 300.0).abs() < 1e-12);
        assert!((s.level_residency(0) - 0.6).abs() < 1e-12);
        assert!((s.level_residency(2) - 0.1).abs() < 1e-12);
        assert_eq!(s.level_residency(9), 0.0);
    }

    #[test]
    fn zero_division_guards() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.avg_load_latency(), 0.0);
        assert_eq!(s.mispredict_distance(), 0.0);
        assert_eq!(s.level_residency(0), 0.0);
        assert_eq!(s.cpi_fraction(CpiBucket::Base), 0.0);
        assert_eq!(s.cpi_stack_cycles(), 0);
    }

    #[test]
    fn cpi_stack_accessors_sum_across_levels() {
        let mut row0 = [0u64; CPI_BUCKETS];
        row0[CpiBucket::Base as usize] = 60;
        row0[CpiBucket::MemoryStall as usize] = 20;
        let mut row1 = [0u64; CPI_BUCKETS];
        row1[CpiBucket::Base as usize] = 15;
        row1[CpiBucket::FetchEmpty as usize] = 5;
        let s = CoreStats {
            cycles: 100,
            level_cycles: vec![80, 20],
            cpi_stack: vec![row0, row1],
            ..Default::default()
        };
        assert_eq!(s.cpi_bucket_cycles(CpiBucket::Base), 75);
        assert_eq!(s.cpi_stack_cycles(), 100);
        assert!((s.cpi_fraction(CpiBucket::MemoryStall) - 0.2).abs() < 1e-12);
        assert_eq!(s.cpi_bucket_cycles(CpiBucket::RobFull), 0);
    }

    #[test]
    fn bucket_labels_are_unique() {
        let mut labels: Vec<&str> = CpiBucket::ALL.iter().map(CpiBucket::label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), CPI_BUCKETS);
    }
}
