//! Core simulation statistics.

/// Counters accumulated over a simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed-path instructions retired.
    pub committed_insts: u64,
    /// Committed loads.
    pub committed_loads: u64,
    /// Committed stores.
    pub committed_stores: u64,
    /// Committed control transfers.
    pub committed_branches: u64,
    /// Committed conditional branches.
    pub committed_cond_branches: u64,
    /// Committed branches that had been mispredicted.
    pub committed_mispredicts: u64,
    /// Summed end-to-end latency of committed loads (cycles).
    pub load_latency_sum: u64,

    /// Cycles spent at each resource level (index 0 = level 1) — Fig. 8.
    pub level_cycles: Vec<u64>,
    /// Completed enlargements.
    pub transitions_up: u64,
    /// Completed shrinks.
    pub transitions_down: u64,

    /// Cycles allocation was stalled by a level-transition penalty.
    pub stall_transition: u64,
    /// Cycles allocation was stalled waiting for a shrink region to drain.
    pub stall_shrink_wait: u64,
    /// Cycles allocation was blocked by a full ROB.
    pub stall_rob_full: u64,
    /// Cycles allocation was blocked by a full issue queue.
    pub stall_iq_full: u64,
    /// Cycles allocation was blocked by a full LSQ.
    pub stall_lsq_full: u64,
    /// Cycles nothing was ready to dispatch (fetch-limited).
    pub stall_fetch_empty: u64,

    /// Total instructions dispatched into the window (committed-path,
    /// wrong-path and runahead replays alike) — the energy model's
    /// activity base.
    pub dispatched_total: u64,
    /// Total instructions issued to function units.
    pub issued_total: u64,
    /// Pipeline squashes from branch recovery.
    pub squashes: u64,
    /// Wrong-path instructions that entered the pipeline.
    pub wrongpath_dispatched: u64,

    /// Runahead episodes entered.
    pub runahead_episodes: u64,
    /// Cycles spent in runahead mode.
    pub runahead_cycles: u64,
    /// Episodes suppressed by the cause status table.
    pub runahead_suppressed: u64,
    /// Entries skipped because too little of the miss latency remained.
    pub runahead_short_skips: u64,
    /// Episodes that overlapped at least one additional L2 miss.
    pub runahead_useful_episodes: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_insts as f64 / self.cycles as f64
        }
    }

    /// Average end-to-end latency of committed loads (Table 3).
    pub fn avg_load_latency(&self) -> f64 {
        if self.committed_loads == 0 {
            0.0
        } else {
            self.load_latency_sum as f64 / self.committed_loads as f64
        }
    }

    /// Committed instructions per committed misprediction (Table 5).
    /// Returns `committed_insts` when no branch mispredicted.
    pub fn mispredict_distance(&self) -> f64 {
        if self.committed_mispredicts == 0 {
            self.committed_insts as f64
        } else {
            self.committed_insts as f64 / self.committed_mispredicts as f64
        }
    }

    /// Fraction of cycles spent at `level` (0-based) — Fig. 8 series.
    pub fn level_residency(&self, level: usize) -> f64 {
        if self.cycles == 0 || level >= self.level_cycles.len() {
            0.0
        } else {
            self.level_cycles[level] as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = CoreStats {
            cycles: 1000,
            committed_insts: 1500,
            committed_loads: 100,
            load_latency_sum: 700,
            committed_mispredicts: 5,
            level_cycles: vec![600, 300, 100],
            ..Default::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.avg_load_latency() - 7.0).abs() < 1e-12);
        assert!((s.mispredict_distance() - 300.0).abs() < 1e-12);
        assert!((s.level_residency(0) - 0.6).abs() < 1e-12);
        assert!((s.level_residency(2) - 0.1).abs() < 1e-12);
        assert_eq!(s.level_residency(9), 0.0);
    }

    #[test]
    fn zero_division_guards() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.avg_load_latency(), 0.0);
        assert_eq!(s.mispredict_distance(), 0.0);
        assert_eq!(s.level_residency(0), 0.0);
    }
}
