//! The core's event wheel: a hierarchical calendar queue over
//! (cycle, dyn_seq) wake-up events.
//!
//! The scheduler keeps two of these (operand-ready promotions and
//! execution completions), and the stall fast-forward reads their
//! [`next_time`](EventWheel::next_time) as two legs of its next-event
//! bound — the same queue serves single-step pops and bulk skips, so
//! there is exactly one source of truth for "when does the pipeline
//! wake next".
//!
//! # Structure
//!
//! A *near* wheel of [`NEAR_SLOTS`] single-cycle buckets covers the
//! window `[floor, floor + NEAR_SLOTS)`; because the window never spans
//! more than one lap, slot `t % NEAR_SLOTS` maps to exactly one cycle
//! and no per-entry time needs storing. Events beyond the window wait
//! in a *far* `BTreeMap` and migrate into the wheel as the floor
//! advances past pops. An occupancy bitmap (one bit per slot) makes
//! [`next_time`](EventWheel::next_time) a handful of word scans rather
//! than a slot walk, so the fast-forward's bound query stays cheap even
//! when the wheel is sparse — the regime the whole structure exists
//! for.
//!
//! # Ordering contract
//!
//! Pops yield strictly non-decreasing `(time, seq)` pairs, ties broken
//! by ascending `seq` — the exact order a `BinaryHeap<Reverse<(Cycle,
//! DynSeq)>>` would produce, which the writeback and wakeup stages'
//! squash/filter logic depends on. Since sequence numbers are handed
//! out in program order, ascending `seq` within a cycle is FIFO over
//! same-cycle posts.

use crate::types::DynSeq;
use mlpwin_isa::Cycle;
use std::collections::BTreeMap;

/// Near-wheel span in cycles (and slots). Covers an unloaded memory
/// round trip with generous queueing margin, so only deeply backed-up
/// DRAM bursts ever touch the far map.
pub const NEAR_SLOTS: usize = 1024;

const WORDS: usize = NEAR_SLOTS / 64;

/// Every distinct wake-up source the scheduler tracks. The wheels carry
/// the first two as posted events; the rest are scalar horizons the
/// [`next_wake`](crate::core::Core::next_wake) plan folds in. Carried
/// alongside the bound so telemetry can say *what* ends each coast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeSource {
    /// An instruction's operands arrive (pending-ready wheel).
    OperandReady,
    /// A function unit finishes executing (completion wheel).
    Completion,
    /// An in-flight memory-side fill completes ([`next_event_at`]
    /// contract; consulted in event-driven mode).
    ///
    /// [`next_event_at`]: mlpwin_memsys::MemSystem::next_event_at
    MemSystem,
    /// A runahead episode ends.
    EpisodeEnd,
    /// The post-transition allocation stall expires.
    AllocStall,
    /// The window policy's quiet promise runs out.
    PolicyQuiet,
    /// The front end resumes (queued head decodes, or recovery ends).
    FrontEnd,
    /// An interval-series epoch boundary must be sampled.
    IntervalEpoch,
    /// A snapshot-cadence point must land on a real step.
    SnapshotCadence,
    /// The commit watchdog would trip.
    Watchdog,
    /// The armed run deadline would trip.
    Deadline,
}

impl WakeSource {
    /// Number of distinct sources (histogram width).
    pub const COUNT: usize = 11;

    /// Every source, in [`index`](WakeSource::index) order.
    pub const ALL: [WakeSource; WakeSource::COUNT] = [
        WakeSource::OperandReady,
        WakeSource::Completion,
        WakeSource::MemSystem,
        WakeSource::EpisodeEnd,
        WakeSource::AllocStall,
        WakeSource::PolicyQuiet,
        WakeSource::FrontEnd,
        WakeSource::IntervalEpoch,
        WakeSource::SnapshotCadence,
        WakeSource::Watchdog,
        WakeSource::Deadline,
    ];

    /// Dense histogram index.
    pub fn index(self) -> usize {
        match self {
            WakeSource::OperandReady => 0,
            WakeSource::Completion => 1,
            WakeSource::MemSystem => 2,
            WakeSource::EpisodeEnd => 3,
            WakeSource::AllocStall => 4,
            WakeSource::PolicyQuiet => 5,
            WakeSource::FrontEnd => 6,
            WakeSource::IntervalEpoch => 7,
            WakeSource::SnapshotCadence => 8,
            WakeSource::Watchdog => 9,
            WakeSource::Deadline => 10,
        }
    }

    /// Snake-case label for metric names and reports.
    pub fn label(self) -> &'static str {
        match self {
            WakeSource::OperandReady => "operand_ready",
            WakeSource::Completion => "completion",
            WakeSource::MemSystem => "mem_system",
            WakeSource::EpisodeEnd => "episode_end",
            WakeSource::AllocStall => "alloc_stall",
            WakeSource::PolicyQuiet => "policy_quiet",
            WakeSource::FrontEnd => "front_end",
            WakeSource::IntervalEpoch => "interval_epoch",
            WakeSource::SnapshotCadence => "snapshot_cadence",
            WakeSource::Watchdog => "watchdog",
            WakeSource::Deadline => "deadline",
        }
    }
}

/// Event-engine telemetry totals over a core's lifetime: calendar-queue
/// traffic and how the cycle clock advanced (bulk skips versus real
/// steps). Host-side diagnostics — never part of stats or snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Events posted into both calendar queues.
    pub events_posted: u64,
    /// Events popped from both calendar queues.
    pub events_popped: u64,
    /// Cycles advanced in bulk by the stall fast-forward.
    pub skipped_cycles: u64,
    /// Cycles executed as real pipeline steps.
    pub stepped_cycles: u64,
}

impl EngineCounters {
    /// Fraction of all cycles advanced in bulk, in `[0, 1]`.
    pub fn skip_fraction(&self) -> f64 {
        let total = self.skipped_cycles + self.stepped_cycles;
        if total == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 / total as f64
        }
    }
}

/// A time-indexed queue of `(cycle, seq)` wake-up events.
#[derive(Debug, Clone)]
pub struct EventWheel {
    /// All events at times `< floor` have been popped; the near wheel
    /// covers `[floor, floor + NEAR_SLOTS)`.
    floor: Cycle,
    /// Near buckets, each sorted ascending by seq; slot `t % NEAR_SLOTS`.
    slots: Vec<Vec<DynSeq>>,
    /// Occupancy bit per near slot.
    bits: [u64; WORDS],
    /// Events at `t >= floor + NEAR_SLOTS`, bucketed by time.
    far: BTreeMap<Cycle, Vec<DynSeq>>,
    len: usize,
    /// Host-side telemetry: lifetime posts and pops. Deliberately not
    /// snapshotted (like the fast-forward's skip counter): restoring a
    /// core resets them to the restored session's own activity.
    posted: u64,
    popped: u64,
}

impl Default for EventWheel {
    fn default() -> EventWheel {
        EventWheel::new()
    }
}

impl EventWheel {
    /// An empty wheel with its window starting at cycle 0.
    pub fn new() -> EventWheel {
        EventWheel {
            floor: 0,
            slots: vec![Vec::new(); NEAR_SLOTS],
            bits: [0; WORDS],
            far: BTreeMap::new(),
            len: 0,
            posted: 0,
            popped: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no event is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lifetime events posted (telemetry).
    pub fn posted(&self) -> u64 {
        self.posted
    }

    /// Lifetime events popped (telemetry).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Queues an event.
    ///
    /// # Panics
    ///
    /// Panics if `t` is below the wheel's floor (a wake-up in the past:
    /// scheduler posts are always strictly in the future).
    pub fn post(&mut self, t: Cycle, seq: DynSeq) {
        assert!(
            t >= self.floor,
            "event at {t} posted below floor {}",
            self.floor
        );
        self.posted += 1;
        self.len += 1;
        if t < self.floor + NEAR_SLOTS as Cycle {
            let slot = (t % NEAR_SLOTS as Cycle) as usize;
            let bucket = &mut self.slots[slot];
            let pos = bucket.partition_point(|&s| s < seq);
            bucket.insert(pos, seq);
            self.bits[slot / 64] |= 1 << (slot % 64);
        } else {
            let bucket = self.far.entry(t).or_default();
            let pos = bucket.partition_point(|&s| s < seq);
            bucket.insert(pos, seq);
        }
    }

    /// Removes one queued `(t, seq)` event; returns whether it existed.
    pub fn cancel(&mut self, t: Cycle, seq: DynSeq) -> bool {
        if t < self.floor {
            return false; // already popped
        }
        if t < self.floor + NEAR_SLOTS as Cycle {
            let slot = (t % NEAR_SLOTS as Cycle) as usize;
            let bucket = &mut self.slots[slot];
            let Ok(pos) = bucket.binary_search(&seq) else {
                return false;
            };
            bucket.remove(pos);
            if bucket.is_empty() {
                self.bits[slot / 64] &= !(1 << (slot % 64));
            }
        } else {
            let Some(bucket) = self.far.get_mut(&t) else {
                return false;
            };
            let Ok(pos) = bucket.binary_search(&seq) else {
                return false;
            };
            bucket.remove(pos);
            if bucket.is_empty() {
                self.far.remove(&t);
            }
        }
        self.len -= 1;
        true
    }

    /// Moves a queued event to a new time; returns whether the old
    /// event existed (nothing is posted when it did not).
    ///
    /// # Panics
    ///
    /// Panics if `new_t` is below the floor (as [`post`](Self::post)).
    pub fn reschedule(&mut self, old_t: Cycle, new_t: Cycle, seq: DynSeq) -> bool {
        if !self.cancel(old_t, seq) {
            return false;
        }
        self.posted -= 1; // the re-post below is a move, not a fresh event
        self.post(new_t, seq);
        true
    }

    /// Earliest queued event time, if any.
    pub fn next_time(&self) -> Option<Cycle> {
        self.next_near_time()
            .or_else(|| self.far.keys().next().copied())
    }

    /// Scans the occupancy bitmap in time order (wrapping from the
    /// floor's slot) for the earliest occupied near slot.
    fn next_near_time(&self) -> Option<Cycle> {
        let start = (self.floor % NEAR_SLOTS as Cycle) as usize;
        let (sw, sb) = (start / 64, start % 64);
        let head = self.bits[sw] & (!0u64 << sb);
        if head != 0 {
            return Some(self.slot_time(sw * 64 + head.trailing_zeros() as usize));
        }
        for k in 1..WORDS {
            let i = (sw + k) % WORDS;
            if self.bits[i] != 0 {
                return Some(self.slot_time(i * 64 + self.bits[i].trailing_zeros() as usize));
            }
        }
        let tail = self.bits[sw] & !(!0u64 << sb);
        if tail != 0 {
            return Some(self.slot_time(sw * 64 + tail.trailing_zeros() as usize));
        }
        None
    }

    /// The unique time in `[floor, floor + NEAR_SLOTS)` congruent to
    /// `slot` — the modular inverse of the slot mapping.
    fn slot_time(&self, slot: usize) -> Cycle {
        let base = self.floor - (self.floor % NEAR_SLOTS as Cycle);
        let t = base + slot as Cycle;
        if t >= self.floor {
            t
        } else {
            t + NEAR_SLOTS as Cycle
        }
    }

    /// Pops the earliest event if it is due (`time <= now`). Advances
    /// the floor to the popped time, migrating far events that the
    /// advance brings inside the near window.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, DynSeq)> {
        let t = self.next_time()?;
        if t > now {
            return None;
        }
        if t > self.floor {
            self.floor = t;
            // Far events now inside [floor, floor + NEAR_SLOTS) move
            // into the wheel (including t's own bucket when the floor
            // jumped a whole lap).
            while let Some((&ft, _)) = self.far.iter().next() {
                if ft >= self.floor + NEAR_SLOTS as Cycle {
                    break;
                }
                let bucket = self.far.remove(&ft).expect("checked present");
                let slot = (ft % NEAR_SLOTS as Cycle) as usize;
                debug_assert!(self.slots[slot].is_empty(), "slot collision on migrate");
                self.slots[slot] = bucket;
                self.bits[slot / 64] |= 1 << (slot % 64);
            }
        }
        let slot = (t % NEAR_SLOTS as Cycle) as usize;
        let bucket = &mut self.slots[slot];
        debug_assert!(!bucket.is_empty(), "next_time pointed at an empty slot");
        let seq = bucket.remove(0);
        if bucket.is_empty() {
            self.bits[slot / 64] &= !(1 << (slot % 64));
        }
        self.len -= 1;
        self.popped += 1;
        Some((t, seq))
    }

    /// Drops every queued event (runahead exit). The floor — and the
    /// telemetry counters — are unaffected.
    pub fn clear(&mut self) {
        if self.len == 0 {
            return;
        }
        for w in 0..WORDS {
            let mut bits = self.bits[w];
            while bits != 0 {
                let slot = w * 64 + bits.trailing_zeros() as usize;
                self.slots[slot].clear();
                bits &= bits - 1;
            }
            self.bits[w] = 0;
        }
        self.far.clear();
        self.len = 0;
    }

    /// Every queued event as ascending `(time, seq)` pairs — the
    /// canonical serialized form (identical to what sorting a heap's
    /// contents produces, so snapshot images are representation-free).
    pub fn sorted_events(&self) -> Vec<(Cycle, DynSeq)> {
        let mut out = Vec::with_capacity(self.len);
        // Near slots in time order: walk the bitmap from the floor slot.
        let start = (self.floor % NEAR_SLOTS as Cycle) as usize;
        for k in 0..NEAR_SLOTS {
            let slot = (start + k) % NEAR_SLOTS;
            if self.bits[slot / 64] & (1 << (slot % 64)) != 0 {
                let t = self.slot_time(slot);
                out.extend(self.slots[slot].iter().map(|&s| (t, s)));
            }
        }
        for (&t, bucket) in &self.far {
            out.extend(bucket.iter().map(|&s| (t, s)));
        }
        debug_assert!(out.is_sorted());
        out
    }

    /// Rebuilds the wheel from serialized events with the window
    /// starting at `floor`. Returns `false` (leaving the wheel cleared)
    /// when any event lies below the floor — a corrupt image, since
    /// snapshots are only taken at step boundaries where every queued
    /// event is strictly in the future.
    #[must_use]
    pub fn restore(&mut self, floor: Cycle, events: &[(Cycle, DynSeq)]) -> bool {
        self.clear();
        self.floor = floor;
        if events.iter().any(|&(t, _)| t < floor) {
            return false;
        }
        for &(t, seq) in events {
            self.post(t, seq);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut EventWheel, now: Cycle) -> Vec<(Cycle, DynSeq)> {
        let mut out = Vec::new();
        while let Some(e) = w.pop_due(now) {
            out.push(e);
        }
        out
    }

    #[test]
    fn pops_ascending_time_then_seq() {
        let mut w = EventWheel::new();
        w.post(5, 30);
        w.post(3, 99);
        w.post(5, 10);
        w.post(3, 1);
        assert_eq!(w.next_time(), Some(3));
        assert_eq!(drain(&mut w, 100), vec![(3, 1), (3, 99), (5, 10), (5, 30)]);
        assert!(w.is_empty());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut w = EventWheel::new();
        w.post(10, 1);
        w.post(20, 2);
        assert_eq!(w.pop_due(9), None);
        assert_eq!(w.pop_due(10), Some((10, 1)));
        assert_eq!(w.pop_due(19), None);
        assert_eq!(w.next_time(), Some(20));
        assert_eq!(w.pop_due(20), Some((20, 2)));
    }

    #[test]
    fn duplicate_events_pop_adjacent() {
        let mut w = EventWheel::new();
        w.post(7, 4);
        w.post(7, 4);
        assert_eq!(w.len(), 2);
        assert_eq!(drain(&mut w, 7), vec![(7, 4), (7, 4)]);
    }

    #[test]
    fn far_events_migrate_across_the_horizon() {
        let mut w = EventWheel::new();
        let far = NEAR_SLOTS as Cycle * 3 + 17;
        w.post(far, 8);
        w.post(2, 1);
        assert_eq!(w.next_time(), Some(2));
        assert_eq!(w.pop_due(2), Some((2, 1)));
        // Nothing due until the far event's own time.
        assert_eq!(w.pop_due(far - 1), None);
        assert_eq!(w.next_time(), Some(far));
        assert_eq!(w.pop_due(far), Some((far, 8)));
        assert!(w.is_empty());
    }

    #[test]
    fn floor_jump_migrates_every_overtaken_bucket() {
        let mut w = EventWheel::new();
        let base = NEAR_SLOTS as Cycle;
        // One near event, then a cluster just past the horizon.
        w.post(base - 1, 1);
        w.post(base + 1, 2);
        w.post(base + 2, 3);
        w.post(base * 2 + 5, 4);
        assert_eq!(
            drain(&mut w, base * 3),
            vec![
                (base - 1, 1),
                (base + 1, 2),
                (base + 2, 3),
                (base * 2 + 5, 4)
            ]
        );
    }

    #[test]
    fn cancel_and_reschedule() {
        let mut w = EventWheel::new();
        w.post(10, 1);
        w.post(10, 2);
        w.post(NEAR_SLOTS as Cycle + 50, 3);
        assert!(w.cancel(10, 1));
        assert!(!w.cancel(10, 1), "second cancel finds nothing");
        assert!(!w.cancel(11, 2), "wrong time finds nothing");
        assert!(w.reschedule(NEAR_SLOTS as Cycle + 50, 4, 3));
        assert!(!w.reschedule(10, 20, 99), "unknown event is not re-posted");
        assert_eq!(drain(&mut w, Cycle::MAX), vec![(4, 3), (10, 2)]);
    }

    #[test]
    fn clear_empties_without_moving_the_floor() {
        let mut w = EventWheel::new();
        w.post(100, 1);
        assert_eq!(w.pop_due(100), Some((100, 1)));
        w.post(150, 2);
        w.post(NEAR_SLOTS as Cycle * 2, 3);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.next_time(), None);
        // Still usable after clear, with the floor where pops left it.
        w.post(120, 9);
        assert_eq!(w.pop_due(120), Some((120, 9)));
    }

    #[test]
    #[should_panic(expected = "below floor")]
    fn posting_into_the_past_is_a_bug() {
        let mut w = EventWheel::new();
        w.post(50, 1);
        let _ = w.pop_due(50);
        w.post(49, 2);
    }

    #[test]
    fn snapshot_round_trip_preserves_events_and_order() {
        let mut w = EventWheel::new();
        w.post(900, 1);
        let _ = w.pop_due(900); // floor at 900: the near window now wraps
        for (t, s) in [(901, 5), (1500, 2), (999_999, 7), (901, 3)] {
            w.post(t, s);
        }
        let events = w.sorted_events();
        assert_eq!(events, vec![(901, 3), (901, 5), (1500, 2), (999_999, 7)]);
        let mut r = EventWheel::new();
        assert!(r.restore(901, &events));
        assert_eq!(r.len(), 4);
        assert_eq!(drain(&mut r, Cycle::MAX), events);
    }

    #[test]
    fn restore_rejects_events_below_the_floor() {
        let mut w = EventWheel::new();
        assert!(!w.restore(100, &[(99, 1)]));
        assert!(w.is_empty(), "rejected restore leaves the wheel empty");
        assert!(w.restore(100, &[(100, 1)]));
    }

    #[test]
    fn telemetry_counts_posts_and_pops() {
        let mut w = EventWheel::new();
        w.post(1, 1);
        w.post(2, 2);
        let _ = w.pop_due(5);
        assert_eq!((w.posted(), w.popped()), (2, 1));
        assert!(w.reschedule(2, 3, 2), "move");
        assert_eq!(w.posted(), 2, "a reschedule is not a fresh post");
        w.clear();
        assert_eq!((w.posted(), w.popped()), (2, 1), "clear keeps telemetry");
    }

    /// The satellite's op fuzzer: an LCG drives random post / pop_due /
    /// cancel / reschedule / next_time traffic against a naive sorted
    /// reference model, asserting identical contents and pop order
    /// (deterministic ties), monotone pop times per sweep, and length
    /// bookkeeping throughout.
    #[test]
    fn lcg_fuzz_against_reference_model() {
        let mut lcg: u64 = 0x2545F4914F6CDD1D;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut w = EventWheel::new();
        let mut model: Vec<(Cycle, DynSeq)> = Vec::new();
        let mut now: Cycle = 0;
        for step in 0..20_000 {
            match next() % 10 {
                // Post: biased near, occasionally far beyond the wheel.
                0..=4 => {
                    let spread = if next() % 8 == 0 { 5_000 } else { 300 };
                    let t = now + 1 + next() % spread;
                    let seq = next() % 64;
                    w.post(t, seq);
                    let pos = model.partition_point(|&e| e < (t, seq));
                    model.insert(pos, (t, seq));
                }
                // Advance time and drain everything due, checking order.
                5..=6 => {
                    now += next() % 700;
                    let mut last_pop: Option<(Cycle, DynSeq)> = None;
                    while let Some((t, seq)) = w.pop_due(now) {
                        assert!(t <= now);
                        assert!(last_pop <= Some((t, seq)), "pop order regressed");
                        last_pop = Some((t, seq));
                        assert_eq!(model.remove(0), (t, seq), "model disagrees at {step}");
                    }
                    assert!(model.first().is_none_or(|&(t, _)| t > now));
                }
                // Cancel a random queued event (or a missing one).
                7 => {
                    if !model.is_empty() && next() % 4 != 0 {
                        let (t, seq) = model.remove((next() % model.len() as u64) as usize);
                        assert!(w.cancel(t, seq));
                    } else {
                        assert!(!w.cancel(now + 1 + next() % 300, 1 << 40));
                    }
                }
                // Reschedule a random queued event.
                8 => {
                    if !model.is_empty() {
                        let i = (next() % model.len() as u64) as usize;
                        let (t, seq) = model.remove(i);
                        let nt = now + 1 + next() % 2_000;
                        assert!(w.reschedule(t, nt, seq));
                        let pos = model.partition_point(|&e| e < (nt, seq));
                        model.insert(pos, (nt, seq));
                    }
                }
                // Pure observation.
                _ => {
                    assert_eq!(w.next_time(), model.first().map(|&(t, _)| t));
                    assert_eq!(w.len(), model.len());
                }
            }
        }
        assert_eq!(w.sorted_events(), model, "final contents diverged");
    }
}
