//! Runahead-execution support structures (paper §5.7 comparison).
//!
//! Runahead execution (Mutlu et al., HPCA 2003) checkpoints the
//! architectural state when an L2-miss load blocks the ROB head, lets the
//! pipeline *pseudo-retire* past it to prefetch further misses, and
//! squashes back to the checkpoint when the blocking miss resolves. Two
//! auxiliary structures live here:
//!
//! - the **runahead cache** (512 B, 4-way in the paper): holds the data —
//!   and INV status — of stores pseudo-retired during runahead, so later
//!   runahead loads can forward from them;
//! - the **cause status table** from the "Techniques for efficient
//!   processing in runahead execution engines" enhancements: a per-load-PC
//!   predictor of whether entering runahead for that load is useful,
//!   suppressing useless episodes.
//!
//! The mode machinery itself (trigger, pseudo-retire, INV propagation,
//! exit squash) is woven into [`crate::core::Core`]'s commit stage; see
//! the crate docs for why.

use mlpwin_isa::snap::{SnapError, SnapReader, SnapWriter};
use mlpwin_isa::Addr;

/// Outcome of a runahead-cache load lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaLookup {
    /// No runahead store wrote this address: read memory.
    Miss,
    /// A runahead store with valid data wrote it: forward.
    Valid,
    /// A runahead store with INV data wrote it: the load result is INV.
    Inv,
}

#[derive(Debug, Clone, Copy)]
struct RaLine {
    tag: Addr,
    inv: bool,
    valid: bool,
    lru: u64,
}

/// The runahead cache: word-granular store-forwarding state for the
/// duration of one runahead episode.
#[derive(Debug, Clone)]
pub struct RunaheadCache {
    lines: Vec<RaLine>,
    ways: usize,
    sets: usize,
    line_shift: u32,
    tick: u64,
}

impl RunaheadCache {
    /// Creates an empty cache of `bytes` capacity with `ways`
    /// associativity and `line` bytes per entry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into a power-of-two number
    /// of sets.
    pub fn new(bytes: usize, ways: usize, line: usize) -> RunaheadCache {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        assert!(
            ways > 0 && bytes.is_multiple_of(ways * line),
            "bad geometry"
        );
        let sets = bytes / (ways * line);
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        RunaheadCache {
            lines: vec![
                RaLine {
                    tag: 0,
                    inv: false,
                    valid: false,
                    lru: 0
                };
                sets * ways
            ],
            ways,
            sets,
            line_shift: line.trailing_zeros(),
            tick: 0,
        }
    }

    fn set_range(&self, addr: Addr) -> std::ops::Range<usize> {
        let set = ((addr >> self.line_shift) as usize) & (self.sets - 1);
        let base = set * self.ways;
        base..base + self.ways
    }

    /// Records a pseudo-retired store to `addr` with validity `inv`.
    pub fn write(&mut self, addr: Addr, inv: bool) {
        self.tick += 1;
        let tag = addr >> self.line_shift;
        let tick = self.tick;
        let range = self.set_range(addr);
        let set = &mut self.lines[range];
        if let Some(l) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.inv = inv;
            l.lru = tick;
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("at least one way");
        *victim = RaLine {
            tag,
            inv,
            valid: true,
            lru: tick,
        };
    }

    /// Looks up a runahead load at `addr`.
    pub fn lookup(&mut self, addr: Addr) -> RaLookup {
        self.tick += 1;
        let tag = addr >> self.line_shift;
        let tick = self.tick;
        let range = self.set_range(addr);
        for l in &mut self.lines[range] {
            if l.valid && l.tag == tag {
                l.lru = tick;
                return if l.inv {
                    RaLookup::Inv
                } else {
                    RaLookup::Valid
                };
            }
        }
        RaLookup::Miss
    }

    /// Invalidates everything (episode exit).
    pub fn clear(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
        }
    }

    /// Serializes the line array and LRU clock.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.tick);
        w.put_seq(self.lines.iter(), |w, l| {
            w.put_u64(l.tag);
            w.put_bool(l.inv);
            w.put_bool(l.valid);
            w.put_u64(l.lru);
        });
    }

    /// Restores the state written by [`RunaheadCache::save_state`] into
    /// a cache of the same geometry.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.tick = r.get_u64()?;
        let lines = r.get_seq(|r| {
            Ok(RaLine {
                tag: r.get_u64()?,
                inv: r.get_bool()?,
                valid: r.get_bool()?,
                lru: r.get_u64()?,
            })
        })?;
        if lines.len() != self.lines.len() {
            return Err(SnapError::Mismatch {
                what: "runahead-cache geometry",
            });
        }
        self.lines = lines;
        Ok(())
    }
}

/// Per-load-PC usefulness predictor for runahead entry (2-bit counters,
/// direct-mapped, initialized to weakly useful).
#[derive(Debug, Clone)]
pub struct CauseStatusTable {
    counters: Vec<u8>,
}

impl CauseStatusTable {
    /// Creates a table with `entries` counters (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive power of two.
    pub fn new(entries: usize) -> CauseStatusTable {
        assert!(
            entries.is_power_of_two(),
            "CST entries must be a power of two"
        );
        CauseStatusTable {
            // Strongly useful: one useless episode must not immediately
            // suppress a load whose episodes usually overlap misses.
            counters: vec![3; entries],
        }
    }

    fn index(&self, pc: Addr) -> usize {
        ((pc >> 2) as usize) & (self.counters.len() - 1)
    }

    /// Whether runahead should be entered for the load at `pc`.
    pub fn predict_useful(&self, pc: Addr) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Trains the counter with the observed usefulness of an episode.
    pub fn update(&mut self, pc: Addr, useful: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if useful {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Serializes the counter array.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_bytes(&self.counters);
    }

    /// Restores the counters written by
    /// [`CauseStatusTable::save_state`] into a same-sized table.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let counters = r.get_bytes()?;
        if counters.len() != self.counters.len() {
            return Err(SnapError::Mismatch {
                what: "cause-status-table size",
            });
        }
        self.counters.copy_from_slice(counters);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_write_then_lookup() {
        let mut c = RunaheadCache::new(512, 4, 8);
        assert_eq!(c.lookup(0x1000), RaLookup::Miss);
        c.write(0x1000, false);
        assert_eq!(c.lookup(0x1000), RaLookup::Valid);
        c.write(0x1000, true);
        assert_eq!(c.lookup(0x1000), RaLookup::Inv);
    }

    #[test]
    fn cache_clear_empties_everything() {
        let mut c = RunaheadCache::new(512, 4, 8);
        c.write(0x10, false);
        c.write(0x20, true);
        c.clear();
        assert_eq!(c.lookup(0x10), RaLookup::Miss);
        assert_eq!(c.lookup(0x20), RaLookup::Miss);
    }

    #[test]
    fn cache_evicts_lru_within_set() {
        // 2 sets x 2 ways x 8B = 32 bytes: easy to conflict.
        let mut c = RunaheadCache::new(32, 2, 8);
        // Set 0 holds addresses with (addr>>3) even.
        c.write(0x00, false);
        c.write(0x20, false);
        let _ = c.lookup(0x00); // refresh 0x00
        c.write(0x40, false); // evicts 0x20
        assert_eq!(c.lookup(0x00), RaLookup::Valid);
        assert_eq!(c.lookup(0x20), RaLookup::Miss);
        assert_eq!(c.lookup(0x40), RaLookup::Valid);
    }

    #[test]
    fn cst_defaults_to_entering() {
        let t = CauseStatusTable::new(64);
        assert!(t.predict_useful(0x1234));
    }

    #[test]
    fn cst_learns_useless_loads_then_recovers() {
        let mut t = CauseStatusTable::new(64);
        t.update(0x100, false);
        assert!(t.predict_useful(0x100), "one bad episode only weakens");
        t.update(0x100, false);
        assert!(!t.predict_useful(0x100), "two bad episodes suppress");
        t.update(0x100, true);
        assert!(t.predict_useful(0x100), "one good episode re-enables");
    }

    #[test]
    fn cst_entries_are_pc_indexed() {
        let mut t = CauseStatusTable::new(64);
        t.update(0x100, false);
        t.update(0x100, false);
        t.update(0x100, false);
        assert!(!t.predict_useful(0x100));
        assert!(t.predict_useful(0x104), "different PC unaffected");
    }
}
