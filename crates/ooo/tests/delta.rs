//! Interval-delimited execution and checked stats deltas: the `ooo`
//! half of the interval-parallel split contract. A measurement run is
//! paused at snapshot-cadence boundaries with `Core::run_to_cycle`, the
//! per-interval `StatsDelta`s are peeled off with checked subtraction,
//! and their sum onto the interval-0 base must rebuild the serial
//! totals bit-for-bit. The regression half pins down the failure mode
//! the checked subtraction exists for: a requested boundary that falls
//! *inside* a fast-forward skip region is jumped over by an unpinned
//! run, and naive wrapping subtraction of the mismatched boundary
//! states would fabricate ~2^64-cycle deltas.

use mlpwin_ooo::{
    Core, CoreConfig, CoreStats, DeltaError, FixedLevelPolicy, StatsDelta, WindowPolicy,
};
use mlpwin_workloads::{profiles, ProfileWorkload};

fn fixed0() -> Box<dyn WindowPolicy> {
    Box::new(FixedLevelPolicy::new(0))
}

fn build(name: &str, cfg: CoreConfig) -> Core<ProfileWorkload> {
    let w = profiles::by_name(name, 7).expect("profile exists");
    Core::new(cfg, w, fixed0())
}

/// Pauses one armed run at every multiple of `cadence`, collecting the
/// boundary stats, until the commit target lands. Returns the boundary
/// series (including the final state) and the final stats.
fn boundary_series(core: &mut Core<ProfileWorkload>, cadence: u64) -> Vec<CoreStats> {
    let mut series = vec![core.stats().clone()];
    let mut bound = cadence;
    loop {
        let done = core.run_to_cycle(bound).expect("healthy profile");
        let stats = core.stats().clone();
        if !done {
            assert_eq!(
                stats.cycles, bound,
                "pinned run must pause exactly on the cadence point"
            );
        }
        series.push(stats);
        if done {
            return series;
        }
        bound += cadence;
    }
}

#[test]
fn interval_deltas_stitch_back_to_the_serial_totals() {
    const CADENCE: u64 = 700;
    for name in ["mcf", "gcc", "libquantum"] {
        let cfg = CoreConfig {
            snapshot_cycles: Some(CADENCE),
            interval_cycles: Some(500),
            ..CoreConfig::default()
        };
        // Serial reference: the plain one-call path.
        let mut serial = build(name, cfg.clone());
        serial.run_warmup(2_000).unwrap();
        let reference = serial.run(3_000).unwrap();

        // Paused execution of the same run, delta per interval.
        let mut paused = build(name, cfg);
        paused.run_warmup(2_000).unwrap();
        paused.arm_run(3_000);
        let series = boundary_series(&mut paused, CADENCE);
        assert!(series.len() > 3, "{name}: want several intervals");

        let mut total = series[0].clone();
        for pair in series.windows(2) {
            let delta = StatsDelta::between(&pair[0], &pair[1]).expect("monotone boundaries");
            // Conservation holds interval-locally: the delta's CPI
            // stack covers exactly the delta's cycles.
            assert_eq!(delta.as_stats().cpi_stack_cycles(), delta.cycles());
            delta.apply_to(&mut total).unwrap();
        }
        let mut stitched_end = paused.stats().clone();
        assert_eq!(
            total, stitched_end,
            "{name}: deltas must sum to the end state"
        );
        // And the paused run's end state is the serial run's, so the
        // stitched totals equal the reference bit-for-bit.
        paused.mem_mut().finalize();
        stitched_end = paused.stats().clone();
        assert_eq!(stitched_end, reference, "{name}: stitched == serial");
    }
}

#[test]
fn overshot_boundary_is_a_typed_error_not_a_wrap() {
    // mcf at a fixed small window stalls for long L2-miss latencies, so
    // an *unpinned* fast-forwarding run skips entire stall regions in
    // one jump. Walk the run with misaligned pause targets until one
    // lands inside a skip region: `run_to_cycle` then overshoots, which
    // is exactly the "interval starts and ends inside the same
    // fast-forward skip region" hazard.
    let unpinned = CoreConfig {
        fast_forward: true,
        snapshot_cycles: None,
        interval_cycles: None,
        ..CoreConfig::default()
    };
    let mut w = build("mcf", unpinned.clone());
    w.run_warmup(2_000).unwrap();
    w.arm_run(6_000);
    let mut witness = None;
    let mut bound = 0u64;
    loop {
        bound += 97; // deliberately misaligned with any cadence
        let done = w.run_to_cycle(bound).expect("healthy profile");
        if done {
            break;
        }
        if w.stats().cycles > bound {
            witness = Some(bound);
            break;
        }
    }
    let bound = witness.expect("mcf never skipped across a misaligned bound");
    let overshot = w.stats().clone();
    assert!(overshot.cycles > bound);

    // The true boundary state: a run whose cadence pins `bound`, so the
    // fast-forward executes the boundary cycle as a real step. Pinning
    // never perturbs the trajectory, so this *is* the same execution
    // observed at the cycle the sweep would have snapshotted.
    let pinned = CoreConfig {
        snapshot_cycles: Some(bound),
        ..unpinned
    };
    let mut r = build("mcf", pinned);
    r.run_warmup(2_000).unwrap();
    r.arm_run(6_000);
    assert!(!r.run_to_cycle(bound).unwrap());
    let at_boundary = r.stats().clone();
    assert_eq!(at_boundary.cycles, bound);

    // A stitcher validating "worker end == sweep boundary" by naive
    // subtraction would wrap: the overshot state is *ahead* of the
    // boundary. The checked delta refuses with a typed error instead.
    let err = StatsDelta::between(&overshot, &at_boundary).unwrap_err();
    assert!(
        matches!(err, DeltaError::Underflow { .. }),
        "expected an underflow error, got {err:?}"
    );
    // The correctly-oriented difference is well-formed and covers
    // exactly the overshoot — both states lie on one trajectory.
    let d = StatsDelta::between(&at_boundary, &overshot).unwrap();
    assert_eq!(d.cycles(), overshot.cycles - bound);
    assert_eq!(d.as_stats().cpi_stack_cycles(), d.cycles());
}
