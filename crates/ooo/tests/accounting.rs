//! CPI-stack conservation invariants.
//!
//! The accounting pass charges every cycle to exactly one bucket, so
//! the books must balance by construction: each per-level CPI row sums
//! to that level's residency, the whole matrix sums to `cycles`, and
//! `level_cycles` itself sums to `cycles` — on every workload profile,
//! after the warm-up reset, at any fixed level, and under a policy that
//! oscillates hard enough to exercise the transition and shrink-drain
//! buckets.

use mlpwin_isa::Cycle;
use mlpwin_ooo::{
    Core, CoreConfig, CoreStats, CpiBucket, FixedLevelPolicy, WindowPolicy, CPI_BUCKETS,
};
use mlpwin_workloads::profiles;

/// Asserts the conservation invariant on a finished run's statistics.
fn assert_conserved(name: &str, s: &CoreStats) {
    assert_eq!(
        s.level_cycles.len(),
        s.cpi_stack.len(),
        "{name}: one CPI row per level"
    );
    for (level, row) in s.cpi_stack.iter().enumerate() {
        let row_sum: u64 = row.iter().sum();
        assert_eq!(
            row_sum, s.level_cycles[level],
            "{name}: level {level} CPI row must sum to its residency"
        );
    }
    let level_sum: u64 = s.level_cycles.iter().sum();
    assert_eq!(
        level_sum, s.cycles,
        "{name}: level_cycles must cover cycles"
    );
    assert_eq!(
        s.cpi_stack_cycles(),
        s.cycles,
        "{name}: CPI stack must cover cycles"
    );
    let bucket_sum: u64 = CpiBucket::ALL.iter().map(|&b| s.cpi_bucket_cycles(b)).sum();
    assert_eq!(
        bucket_sum, s.cycles,
        "{name}: bucket totals must cover cycles"
    );
}

fn run_fixed(name: &str, cfg: CoreConfig, level: usize, insts: u64) -> CoreStats {
    let w = profiles::by_name(name, 7).expect("profile exists");
    let mut core = Core::new(cfg, w, Box::new(FixedLevelPolicy::new(level)));
    core.run_warmup(5_000).expect("warm-up must not stall");
    core.run(insts).expect("healthy profile must not stall")
}

#[test]
fn every_profile_conserves_cycles_at_level_1() {
    for name in profiles::names() {
        let s = run_fixed(name, CoreConfig::default(), 0, 4_000);
        assert_conserved(name, &s);
        assert!(
            s.cpi_bucket_cycles(CpiBucket::Base) > 0,
            "{name}: some cycle must dispatch"
        );
    }
}

#[test]
fn every_profile_conserves_cycles_at_level_3() {
    for name in profiles::names() {
        let s = run_fixed(name, CoreConfig::with_table2_levels(), 2, 3_000);
        assert_conserved(name, &s);
    }
}

/// A policy that requests the top level and level 0 alternately, forcing
/// frequent transitions (and shrink waits while doomed regions drain).
struct OscillatingPolicy {
    period: Cycle,
}

impl WindowPolicy for OscillatingPolicy {
    fn target_level(
        &mut self,
        now: Cycle,
        _l2_demand_misses: u32,
        _current_level: usize,
        max_level: usize,
    ) -> usize {
        if (now / self.period).is_multiple_of(2) {
            max_level
        } else {
            0
        }
    }
}

#[test]
fn oscillating_policy_exercises_transition_buckets_and_conserves() {
    let w = profiles::by_name("libquantum", 7).expect("profile exists");
    let mut core = Core::new(
        CoreConfig::with_table2_levels(),
        w,
        Box::new(OscillatingPolicy { period: 200 }),
    );
    core.run_warmup(5_000).expect("warm-up must not stall");
    let s = core.run(20_000).expect("healthy run");
    assert_conserved("libquantum/oscillating", &s);
    assert!(s.transitions_up > 0 && s.transitions_down > 0);
    assert!(
        s.cpi_bucket_cycles(CpiBucket::Transition) > 0,
        "oscillation must charge transition cycles"
    );
    assert!(
        s.cpi_bucket_cycles(CpiBucket::ShrinkDrain) > 0,
        "shrinking a busy window must wait for the drain"
    );
}

#[test]
fn runahead_runs_conserve_cycles_too() {
    let cfg = CoreConfig {
        runahead: Some(mlpwin_ooo::RunaheadOpts::default()),
        ..CoreConfig::default()
    };
    let s = run_fixed("libquantum", cfg, 0, 8_000);
    assert_conserved("libquantum/runahead", &s);
    assert!(s.runahead_episodes > 0);
}

fn run_warm(name: &str, insts: u64) -> CoreStats {
    let w = profiles::by_name(name, 7).expect("profile exists");
    let mut core = Core::new(CoreConfig::default(), w, Box::new(FixedLevelPolicy::new(0)));
    core.run_warmup(30_000).expect("warm-up must not stall");
    core.run(insts).expect("healthy profile must not stall")
}

#[test]
fn bucket_attribution_matches_workload_character() {
    // A well-predicted compute profile spends most cycles dispatching.
    let compute = run_warm("sjeng", 8_000);
    assert!(
        compute.cpi_fraction(CpiBucket::Base) > 0.5,
        "sjeng base fraction {} too low",
        compute.cpi_fraction(CpiBucket::Base)
    );
    // A pointer-chasing memory profile stalls on memory, and the refined
    // attribution must recognise the full-window-behind-a-miss signature
    // rather than charging plain capacity stalls.
    let memory = run_warm("libquantum", 8_000);
    assert!(
        memory.cpi_fraction(CpiBucket::MemoryStall) > 0.5,
        "libquantum memory-stall fraction {} too low",
        memory.cpi_fraction(CpiBucket::MemoryStall)
    );
    assert!(
        memory.cpi_fraction(CpiBucket::MemoryStall) > compute.cpi_fraction(CpiBucket::MemoryStall),
        "memory-bound profile must out-stall the compute profile"
    );
}

#[test]
fn reset_counters_restarts_the_books_cleanly() {
    let w = profiles::by_name("mcf", 7).expect("profile exists");
    let mut core = Core::new(CoreConfig::default(), w, Box::new(FixedLevelPolicy::new(0)));
    core.run_warmup(10_000).expect("warm-up must not stall");
    // Immediately after the reset every counter is zero and the stack
    // shape matches the ladder.
    assert_eq!(core.stats().cycles, 0);
    assert_eq!(core.stats().cpi_stack_cycles(), 0);
    assert_eq!(core.stats().cpi_stack.len(), core.config().levels.len());
    assert_eq!(core.stats().cpi_stack[0], [0u64; CPI_BUCKETS]);
    let s = core.run(2_000).expect("healthy run");
    assert_conserved("mcf/post-reset", &s);
}
