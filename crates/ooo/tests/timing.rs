//! Cycle-precision timing tests of the pipeline, using hand-scripted
//! workloads so every dependence and address is exact.

use mlpwin_isa::{ArchReg, Instruction, MemRef, OpClass};
use mlpwin_ooo::{Core, CoreConfig, CoreStats, FixedLevelPolicy, LevelSpec};
use mlpwin_workloads::ScriptedWorkload;

fn run_scripted(body: Vec<Instruction>, config: CoreConfig, insts: u64) -> CoreStats {
    let w = ScriptedWorkload::loop_with_backedge(body).expect("consistent script");
    let mut core = Core::new(config, w, Box::new(FixedLevelPolicy::new(0)));
    core.run_warmup(2_000).expect("warm-up must not stall");
    core.run(insts).expect("healthy run must not stall")
}

fn depth2_config() -> CoreConfig {
    CoreConfig {
        levels: vec![LevelSpec {
            iq_depth: 2,
            extra_mispredict_penalty: 2,
            ..LevelSpec::level1()
        }],
        ..CoreConfig::default()
    }
}

/// A chain of dependent single-cycle ALU ops: r1 <- r1 + ..., repeated.
fn dependent_chain(n: usize) -> Vec<Instruction> {
    (0..n)
        .map(|i| {
            Instruction::alu(
                0x1000 + 4 * i as u64,
                OpClass::IntAlu,
                ArchReg::int(1),
                &[ArchReg::int(1)],
            )
        })
        .collect()
}

/// Independent ALU ops writing round-robin registers from a constant.
fn independent_ops(n: usize) -> Vec<Instruction> {
    (0..n)
        .map(|i| {
            Instruction::alu(
                0x1000 + 4 * i as u64,
                OpClass::IntAlu,
                ArchReg::int(1 + (i % 8) as u8),
                &[ArchReg::int(0)],
            )
        })
        .collect()
}

#[test]
fn dependent_chain_issues_back_to_back_only_at_depth_1() {
    let d1 = run_scripted(dependent_chain(16), CoreConfig::default(), 8_000);
    let d2 = run_scripted(dependent_chain(16), depth2_config(), 8_000);
    // A serial chain runs at ~1 op/cycle at depth 1 and ~0.5 at depth 2.
    let ratio = d1.ipc() / d2.ipc();
    assert!(
        (1.6..2.4).contains(&ratio),
        "depth-2 wakeup should halve chain throughput: d1={:.3} d2={:.3} ratio={ratio:.2}",
        d1.ipc(),
        d2.ipc()
    );
    // Sanity on the absolute rate: ~1 IPC for the chain (plus the jump).
    assert!(
        (0.8..1.3).contains(&d1.ipc()),
        "chain IPC at depth 1 should be ~1: {:.3}",
        d1.ipc()
    );
}

#[test]
fn independent_ops_are_insensitive_to_iq_depth() {
    let d1 = run_scripted(independent_ops(16), CoreConfig::default(), 8_000);
    let d2 = run_scripted(independent_ops(16), depth2_config(), 8_000);
    // No dependent back-to-back pairs: the pipelined IQ costs nothing.
    let ratio = d1.ipc() / d2.ipc();
    assert!(
        (0.95..1.1).contains(&ratio),
        "independent ops should not care about depth: d1={:.3} d2={:.3}",
        d1.ipc(),
        d2.ipc()
    );
    // And they should saturate the 4 ALUs reasonably well.
    assert!(
        d1.ipc() > 2.0,
        "wide independent code too slow: {:.3}",
        d1.ipc()
    );
}

#[test]
fn loads_blocked_by_slow_stores_wait_for_the_data() {
    // r1 <- r1 via a 20-cycle divide; store r1 to A; load A back.
    // The load aliases the store, so it must wait out the divide chain
    // even though address A is L1-resident.
    let addr = 0x8000_0000u64;
    let body = vec![
        Instruction::alu(0x1000, OpClass::IntDiv, ArchReg::int(1), &[ArchReg::int(1)]),
        Instruction::store(
            0x1004,
            ArchReg::int(1),
            ArchReg::int(0),
            MemRef::new(addr, 8),
        ),
        Instruction::load(
            0x1008,
            ArchReg::int(2),
            ArchReg::int(0),
            MemRef::new(addr, 8),
        ),
    ];
    let s = run_scripted(body, CoreConfig::default(), 4_000);
    // Each iteration serializes on the divide; the dependent load's
    // latency is dominated by waiting for the store's data.
    assert!(
        s.avg_load_latency() > 10.0,
        "aliased load must wait for the slow store: {:.1}",
        s.avg_load_latency()
    );
    // And the whole loop runs at ~3 insts (+jump) per ~20-cycle divide.
    assert!(
        s.ipc() < 0.5,
        "divide-serialized loop cannot be fast: {:.3}",
        s.ipc()
    );
}

#[test]
fn store_forwarding_is_fast_when_data_is_ready() {
    // Store from a constant-ready register, then an aliasing load: the
    // store issues immediately, so the load forwards at L1-hit speed.
    let addr = 0x8000_0000u64;
    let body = vec![
        Instruction::store(
            0x1000,
            ArchReg::int(0),
            ArchReg::int(0),
            MemRef::new(addr, 8),
        ),
        Instruction::load(
            0x1004,
            ArchReg::int(2),
            ArchReg::int(0),
            MemRef::new(addr, 8),
        ),
        Instruction::alu(0x1008, OpClass::IntAlu, ArchReg::int(3), &[ArchReg::int(2)]),
    ];
    let s = run_scripted(body, CoreConfig::default(), 4_000);
    assert!(
        s.avg_load_latency() < 5.0,
        "forwarded load should be L1-fast: {:.1}",
        s.avg_load_latency()
    );
}

#[test]
fn unpipelined_divides_throttle_throughput() {
    // Independent divides bound by the 2 unpipelined iMUL/DIV units:
    // throughput <= 2 per 20 cycles = 0.1 div-IPC.
    let body: Vec<Instruction> = (0..8)
        .map(|i| {
            Instruction::alu(
                0x1000 + 4 * i as u64,
                OpClass::IntDiv,
                ArchReg::int(1 + i as u8),
                &[ArchReg::int(0)],
            )
        })
        .collect();
    let s = run_scripted(body, CoreConfig::default(), 2_000);
    // 8 divs + 1 jump per iteration; iteration time >= 8/2 * 20 = 80.
    let ipc_bound = 9.0 / 80.0;
    assert!(
        s.ipc() < ipc_bound * 1.3,
        "divide throughput bound violated: {:.3} vs {:.3}",
        s.ipc(),
        ipc_bound
    );
}

#[test]
fn window_occupancy_never_exceeds_the_level_capacity() {
    use mlpwin_workloads::profiles;
    let config = CoreConfig::with_table2_levels();
    let w = profiles::by_name("sphinx3", 3).expect("profile");
    let mut core = Core::new(config, w, Box::new(mlpwin_ooo::FixedLevelPolicy::new(2)));
    for _ in 0..30_000 {
        core.step();
        let (rob, iq, lsq) = core.occupancy();
        let spec = core.config().levels[core.current_level()];
        assert!(rob <= spec.rob, "ROB overflow: {rob} > {}", spec.rob);
        assert!(iq <= spec.iq, "IQ overflow: {iq} > {}", spec.iq);
        assert!(lsq <= spec.lsq, "LSQ overflow: {lsq} > {}", spec.lsq);
    }
}

#[test]
fn perfectly_predictable_branches_cost_nothing_after_warmup() {
    // The scripted loop's back edge is an unconditional jump: after the
    // BTB warms there are no mispredictions at all.
    let s = run_scripted(independent_ops(16), CoreConfig::default(), 8_000);
    assert_eq!(
        s.committed_mispredicts, 0,
        "a static loop must be perfectly predicted after warm-up"
    );
}
