//! Event-driven scheduling equivalence: folding the memory system's
//! `next_event_at` bound into the core's wake plan is a pure
//! performance optimisation, so every observable statistic must be
//! bit-identical with `event_driven` on and off — on every registered
//! profile (the Table 3 roster and the software-MLP extensions), at
//! every window shape, with runahead enabled, and across the
//! snapshot/resume boundary. Snapshot *bytes* are part of the contract:
//! a paused run must serialize identically under both engines, and an
//! image taken under one engine must resume bit-identically under the
//! other, so interval-split and campaign paths may mix engines freely.

use mlpwin_isa::Cycle;
use mlpwin_ooo::{Core, CoreConfig, CoreStats, FixedLevelPolicy, WakeSource, WindowPolicy};
use mlpwin_workloads::profiles;

/// Every profile the registry resolves: Table 3 roster plus the
/// software-MLP extensions.
fn all_names() -> Vec<&'static str> {
    let mut names = profiles::names();
    names.extend(profiles::software_mlp_names());
    names
}

/// Runs one profile to completion twice — event-driven on and off —
/// and returns both final stats.
fn run_pair(
    name: &str,
    cfg: &CoreConfig,
    make_policy: &dyn Fn() -> Box<dyn WindowPolicy>,
    warmup: u64,
    insts: u64,
) -> (CoreStats, CoreStats) {
    let run_one = |event_driven: bool| {
        let cfg = CoreConfig {
            event_driven,
            ..cfg.clone()
        };
        let w = profiles::by_name(name, 7).expect("profile exists");
        let mut core = Core::new(cfg, w, make_policy());
        core.run_warmup(warmup).expect("warm-up must not stall");
        core.run(insts).expect("healthy profile must not stall")
    };
    (run_one(true), run_one(false))
}

/// Field-by-field bit-identity, so a mismatch names the first field
/// that diverged instead of dumping two whole structs.
fn assert_identical(name: &str, event: &CoreStats, stepped: &CoreStats) {
    assert_eq!(event.cycles, stepped.cycles, "{name}: cycles");
    assert_eq!(
        event.committed_insts, stepped.committed_insts,
        "{name}: committed_insts"
    );
    assert_eq!(
        event.level_cycles, stepped.level_cycles,
        "{name}: level_cycles"
    );
    assert_eq!(event.cpi_stack, stepped.cpi_stack, "{name}: cpi_stack");
    for (i, (e, s)) in event.intervals.iter().zip(&stepped.intervals).enumerate() {
        assert_eq!(e, s, "{name}: interval sample {i}");
    }
    assert_eq!(event, stepped, "{name}: full CoreStats");
}

fn fixed(level: usize) -> Box<dyn Fn() -> Box<dyn WindowPolicy>> {
    Box::new(move || Box::new(FixedLevelPolicy::new(level)))
}

#[test]
fn every_profile_is_bit_identical_at_level_1() {
    let cfg = CoreConfig {
        interval_cycles: Some(512),
        ..CoreConfig::default()
    };
    for name in all_names() {
        let (event, stepped) = run_pair(name, &cfg, &fixed(0), 3_000, 4_000);
        assert_identical(name, &event, &stepped);
    }
}

#[test]
fn every_profile_is_bit_identical_at_table2_level_3() {
    let cfg = CoreConfig {
        interval_cycles: Some(777),
        ..CoreConfig::with_table2_levels()
    };
    for name in all_names() {
        let (event, stepped) = run_pair(name, &cfg, &fixed(2), 2_000, 3_000);
        assert_identical(name, &event, &stepped);
    }
}

#[test]
fn runahead_runs_are_bit_identical() {
    let cfg = CoreConfig {
        runahead: Some(mlpwin_ooo::RunaheadOpts::default()),
        interval_cycles: Some(600),
        ..CoreConfig::default()
    };
    for name in ["libquantum", "mcf", "milc", "chase-batch"] {
        let (event, stepped) = run_pair(name, &cfg, &fixed(0), 5_000, 8_000);
        assert_identical(name, &event, &stepped);
        assert!(
            event.runahead_episodes > 0,
            "{name}: runahead must actually trigger"
        );
    }
}

/// A policy that alternates between the top level and level 0 on a
/// fixed period, thrashing the transition machinery, while exposing the
/// next flip as its quiet horizon.
struct OscillatingPolicy {
    period: Cycle,
}

impl WindowPolicy for OscillatingPolicy {
    fn target_level(
        &mut self,
        now: Cycle,
        _l2_demand_misses: u32,
        _current_level: usize,
        max_level: usize,
    ) -> usize {
        if (now / self.period).is_multiple_of(2) {
            max_level
        } else {
            0
        }
    }

    fn quiet_until(&self, now: Cycle, _current_level: usize) -> Cycle {
        (now / self.period + 1) * self.period
    }
}

#[test]
fn oscillating_policy_is_bit_identical_through_transitions() {
    let cfg = CoreConfig {
        interval_cycles: Some(400),
        ..CoreConfig::with_table2_levels()
    };
    let make =
        |period: Cycle| move || Box::new(OscillatingPolicy { period }) as Box<dyn WindowPolicy>;
    for (name, period) in [("libquantum", 200), ("hash-probe", 331), ("gcc", 250)] {
        let (event, stepped) = run_pair(name, &cfg, &make(period), 4_000, 12_000);
        assert_identical(name, &event, &stepped);
        assert!(
            event.transitions_up > 0 && event.transitions_down > 0,
            "{name}: oscillation must exercise the transition machinery"
        );
    }
}

#[test]
fn snapshot_bytes_match_and_resume_crosses_engines() {
    // A run paused at the same cadence boundary must serialize to the
    // same bytes under both engines, and an image taken under one
    // engine must resume bit-identically under the other — the property
    // the interval-split sweep and campaign resume paths rely on.
    // `snapshot_cycles` pins pauses to exact boundaries (the coast at
    // the tail of a boundary step is declined), exactly how the split
    // runner's `build_core` configures interval-paused execution.
    let cfg = |event_driven: bool| CoreConfig {
        interval_cycles: Some(512),
        snapshot_cycles: Some(512),
        event_driven,
        ..CoreConfig::default()
    };
    for name in ["mcf", "chase-batch"] {
        let policy = || Box::new(FixedLevelPolicy::new(0)) as Box<dyn WindowPolicy>;
        let reference = {
            let w = profiles::by_name(name, 7).expect("profile exists");
            let mut core = Core::new(cfg(false), w, policy());
            core.run_warmup(3_000).expect("warm-up");
            core.run(6_000).expect("healthy run")
        };
        let paused = |event_driven: bool| {
            let w = profiles::by_name(name, 7).expect("profile exists");
            let mut core = Core::new(cfg(event_driven), w, policy());
            core.run_warmup(3_000).expect("warm-up");
            core.arm_run(6_000);
            let done = core.run_to_cycle(1_024).expect("drive to boundary");
            assert!(!done, "{name}: must pause before the commit target");
            assert_eq!(core.stats().cycles, 1_024, "{name}: paused off-boundary");
            core.snapshot()
        };
        let stepped_image = paused(false);
        let event_image = paused(true);
        assert_eq!(
            stepped_image, event_image,
            "{name}: snapshot bytes must not depend on the engine"
        );
        for (resume_event, image) in [(true, &stepped_image), (false, &event_image)] {
            let w = profiles::by_name(name, 7).expect("profile exists");
            let mut core = Core::new(cfg(resume_event), w, policy());
            core.restore(image).expect("image restores");
            let done = core.run_to_cycle(Cycle::MAX).expect("drive to completion");
            assert!(done, "{name}: resumed run reaches its commit target");
            assert_identical(name, core.stats(), &reference);
        }
    }
}

#[test]
fn software_mlp_profiles_live_in_the_sparse_event_regime() {
    // The Cimple-style kernels exist to exercise long quiet stretches
    // punctuated by bursts of independent fills: the event engine must
    // advance most of their cycles in bulk, and the wake histogram must
    // attribute the coasts to real sources.
    for name in profiles::software_mlp_names() {
        let cfg = CoreConfig {
            event_driven: true,
            ..CoreConfig::default()
        };
        let w = profiles::by_name(name, 7).expect("profile exists");
        let mut core = Core::new(cfg, w, Box::new(FixedLevelPolicy::new(0)));
        core.run_warmup(5_000).expect("warm-up");
        let stats = core.run(8_000).expect("healthy run");
        let engine = core.engine_counters();
        assert!(
            engine.skip_fraction() > 0.5,
            "{name}: only {:.0}% of cycles were bulk-advanced",
            engine.skip_fraction() * 100.0
        );
        assert!(
            engine.events_posted > 0 && engine.events_popped > 0,
            "{name}"
        );
        let woken: u64 = core.wake_histogram().iter().sum();
        assert!(woken > 0, "{name}: no coasts attributed to a wake source");
        assert!(
            stats.cycles > stats.committed_insts / 4,
            "{name}: not memory-bound enough to exercise the regime"
        );
        // The histogram is indexable by source for diagnostics.
        let _ = core.wake_histogram()[WakeSource::MemSystem.index()];
    }
}
