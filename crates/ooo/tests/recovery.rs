//! Branch-recovery and speculation-correctness tests on scripted loops
//! with precisely known branch behaviour.

use mlpwin_isa::{ArchReg, Instruction, OpClass};
use mlpwin_ooo::{Core, CoreConfig, CoreStats, FixedLevelPolicy, LevelSpec};
use mlpwin_workloads::{ScriptedWorkload, Workload};

fn run(w: ScriptedWorkload, config: CoreConfig, insts: u64) -> CoreStats {
    let mut core = Core::new(config, w, Box::new(FixedLevelPolicy::new(0)));
    core.run_warmup(2_000).expect("warm-up must not stall");
    core.run(insts).expect("healthy run must not stall")
}

/// A loop whose conditional branch alternates taken/not-taken with a
/// long period-`p` pattern, optionally beyond gshare's 16-bit history.
fn alternating_branch_loop() -> Vec<Instruction> {
    // r1 <- r1 (filler), cond branch (alternating), filler, back edge.
    // Alternation with period 2 is learnable through global history.
    vec![Instruction::alu(
        0x1000,
        OpClass::IntAlu,
        ArchReg::int(1),
        &[ArchReg::int(1)],
    )]
}

#[test]
fn alternating_branch_is_learned_end_to_end() {
    // Build two bodies: iteration A (branch taken), iteration B (branch
    // not taken); the scripted loop alternates them, so the branch at a
    // single PC strictly alternates — gshare learns it perfectly.
    let _ = alternating_branch_loop();
    let taken_target = 0x100cu64;
    let body = vec![
        Instruction::alu(0x1000, OpClass::IntAlu, ArchReg::int(1), &[ArchReg::int(1)]),
        // Iteration A: taken, skipping the 0x1008 filler.
        Instruction::cond_branch(0x1004, ArchReg::int(1), true, taken_target),
        // (0x1008 is architecturally skipped in iteration A; the stream
        // continues at 0x100c directly.)
        Instruction::alu(
            taken_target,
            OpClass::IntAlu,
            ArchReg::int(2),
            &[ArchReg::int(1)],
        ),
        // Iteration B begins: fall through a not-taken instance.
        Instruction::alu(0x1010, OpClass::IntAlu, ArchReg::int(1), &[ArchReg::int(1)]),
        Instruction::cond_branch(0x1014, ArchReg::int(1), false, 0x2000),
        Instruction::alu(0x1018, OpClass::IntAlu, ArchReg::int(2), &[ArchReg::int(1)]),
    ];
    let w = ScriptedWorkload::loop_with_backedge(body).expect("consistent");
    let s = run(w, CoreConfig::default(), 10_000);
    assert_eq!(
        s.committed_mispredicts, 0,
        "static branch behaviour must be fully learned after warm-up"
    );
}

#[test]
fn committed_stream_is_exactly_the_scripted_stream() {
    // The pipeline must commit exactly the committed-path instructions,
    // in order, regardless of speculation: committed counts per opcode
    // must match the script's proportions precisely.
    let body = vec![
        Instruction::alu(0x1000, OpClass::IntAlu, ArchReg::int(1), &[ArchReg::int(0)]),
        Instruction::alu(0x1004, OpClass::IntMul, ArchReg::int(2), &[ArchReg::int(1)]),
        Instruction::load(
            0x1008,
            ArchReg::int(3),
            ArchReg::int(0),
            mlpwin_isa::MemRef::new(0x9000_0000, 8),
        ),
        Instruction::store(
            0x100c,
            ArchReg::int(3),
            ArchReg::int(0),
            mlpwin_isa::MemRef::new(0x9000_0100, 8),
        ),
    ];
    let w = ScriptedWorkload::loop_with_backedge(body).expect("consistent");
    let body_len = w.body_len() as u64; // 5 including back edge
    let s = run(w, CoreConfig::default(), 5_000);
    let iterations = s.committed_insts / body_len;
    // One load and one store per iteration, exactly.
    assert!(
        (s.committed_loads as i64 - iterations as i64).abs() <= 1,
        "loads {} vs iterations {}",
        s.committed_loads,
        iterations
    );
    assert!(
        (s.committed_stores as i64 - iterations as i64).abs() <= 1,
        "stores {} vs iterations {}",
        s.committed_stores,
        iterations
    );
    // One jump (the back edge) per iteration.
    assert!(
        (s.committed_branches as i64 - iterations as i64).abs() <= 1,
        "branches {} vs iterations {}",
        s.committed_branches,
        iterations
    );
}

#[test]
fn deeper_levels_pay_a_larger_mispredict_penalty() {
    // A deliberately unpredictable branch (outcome from a pseudo-random
    // profile) costs more at level 3 (extra penalty +2) than level 1.
    // Use the gobmk profile, whose mispredict rate is the highest.
    use mlpwin_workloads::profiles;
    let mut ipcs = Vec::new();
    for spec in [LevelSpec::level1(), LevelSpec::level3()] {
        let config = CoreConfig {
            levels: vec![spec],
            ..CoreConfig::default()
        };
        let w = profiles::by_name("gobmk", 11).expect("profile");
        let mut core = Core::new(config, w, Box::new(FixedLevelPolicy::new(0)));
        core.run_warmup(60_000).expect("warm-up must not stall");
        ipcs.push(core.run(15_000).expect("healthy run").ipc());
    }
    assert!(
        ipcs[1] < ipcs[0],
        "the pipelined large window must cost gobmk: L1 {:.3} vs L3 {:.3}",
        ipcs[0],
        ipcs[1]
    );
}

#[test]
fn squash_preserves_architectural_register_semantics() {
    // After any number of squashes, the dependent chain r1 -> r2 -> use
    // must still commit every iteration (rename rollback correctness is
    // observable as: the run completes with exact per-iteration counts
    // and the watchdog never fires).
    let body = vec![
        Instruction::alu(0x1000, OpClass::IntAlu, ArchReg::int(1), &[ArchReg::int(1)]),
        Instruction::alu(0x1004, OpClass::IntAlu, ArchReg::int(2), &[ArchReg::int(1)]),
        Instruction::alu(0x1008, OpClass::IntAlu, ArchReg::int(1), &[ArchReg::int(2)]),
    ];
    let w = ScriptedWorkload::loop_with_backedge(body).expect("consistent");
    // Use the dynamic ladder so transitions interleave with execution.
    let config = CoreConfig::with_table2_levels();
    let mut core = Core::new(config, w, Box::new(FixedLevelPolicy::new(1)));
    core.run_warmup(1_000).expect("warm-up must not stall");
    let s = core.run(6_000).expect("healthy run");
    assert!(s.committed_insts >= 6_000);
    assert!(s.ipc() > 0.3, "chain loop stalled: {:.3}", s.ipc());
}

#[test]
fn scripted_workload_name_and_looping() {
    let body = vec![Instruction::alu(
        0x1000,
        OpClass::IntAlu,
        ArchReg::int(1),
        &[ArchReg::int(0)],
    )];
    let mut w = ScriptedWorkload::loop_with_backedge(body).expect("consistent");
    assert_eq!(w.name(), "scripted");
    let a = w.next_inst();
    let b = w.next_inst();
    let c = w.next_inst();
    assert_eq!(a.pc, 0x1000);
    assert_eq!(b.pc, 0x1004, "back edge");
    assert_eq!(c.pc, 0x1000, "looped");
}
