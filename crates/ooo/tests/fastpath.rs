//! Fast-forward equivalence: the stall-cycle fast-forward is a pure
//! performance optimisation, so every observable statistic must be
//! bit-identical with it on and off — on every workload profile, at
//! every window shape, under the oscillating policy that thrashes the
//! transition machinery, and with runahead enabled. The interval time
//! series and CPI-stack conservation are part of the contract: a skip
//! that crossed an epoch boundary or under-charged a bucket would show
//! up here before it could corrupt a journal hash.

use mlpwin_isa::Cycle;
use mlpwin_ooo::{Core, CoreConfig, CoreStats, CpiBucket, FixedLevelPolicy, WindowPolicy};
use mlpwin_workloads::profiles;

/// Runs one profile to completion twice — fast-forward on and off —
/// and returns both final stats plus the number of cycles the fast
/// path skipped.
fn run_pair(
    name: &str,
    cfg: &CoreConfig,
    make_policy: &dyn Fn() -> Box<dyn WindowPolicy>,
    warmup: u64,
    insts: u64,
) -> (CoreStats, CoreStats, u64) {
    let run_one = |fast_forward: bool| {
        let cfg = CoreConfig {
            fast_forward,
            ..cfg.clone()
        };
        let w = profiles::by_name(name, 7).expect("profile exists");
        let mut core = Core::new(cfg, w, make_policy());
        core.run_warmup(warmup).expect("warm-up must not stall");
        let stats = core.run(insts).expect("healthy profile must not stall");
        (stats, core.fast_forwarded_cycles())
    };
    let (fast, skipped) = run_one(true);
    let (slow, slow_skipped) = run_one(false);
    assert_eq!(slow_skipped, 0, "{name}: the knob must actually disable it");
    (fast, slow, skipped)
}

/// The full bit-identity check, including the pieces `PartialEq` on the
/// struct would already cover — spelled out so a mismatch names the
/// first field that diverged instead of dumping two whole structs.
fn assert_identical(name: &str, fast: &CoreStats, slow: &CoreStats) {
    assert_eq!(fast.cycles, slow.cycles, "{name}: cycles");
    assert_eq!(
        fast.committed_insts, slow.committed_insts,
        "{name}: committed_insts"
    );
    assert_eq!(fast.level_cycles, slow.level_cycles, "{name}: level_cycles");
    assert_eq!(fast.cpi_stack, slow.cpi_stack, "{name}: cpi_stack");
    assert_eq!(
        fast.intervals.len(),
        slow.intervals.len(),
        "{name}: interval count"
    );
    for (i, (f, s)) in fast.intervals.iter().zip(&slow.intervals).enumerate() {
        assert_eq!(f, s, "{name}: interval sample {i}");
    }
    assert_eq!(fast, slow, "{name}: full CoreStats");
    // Conservation must hold on the fast-forwarded run in its own right:
    // bulk-charged cycles land in exactly one bucket of one level.
    let stack: u64 = fast.cpi_stack_cycles();
    assert_eq!(stack, fast.cycles, "{name}: CPI stack covers cycles");
    let levels: u64 = fast.level_cycles.iter().sum();
    assert_eq!(levels, fast.cycles, "{name}: level residency covers cycles");
}

fn fixed(level: usize) -> Box<dyn Fn() -> Box<dyn WindowPolicy>> {
    Box::new(move || Box::new(FixedLevelPolicy::new(level)))
}

#[test]
fn every_profile_is_bit_identical_at_level_1() {
    let cfg = CoreConfig {
        interval_cycles: Some(512),
        ..CoreConfig::default()
    };
    for name in profiles::names() {
        let (fast, slow, _) = run_pair(name, &cfg, &fixed(0), 3_000, 4_000);
        assert_identical(name, &fast, &slow);
    }
}

#[test]
fn every_profile_is_bit_identical_at_table2_level_3() {
    let cfg = CoreConfig {
        interval_cycles: Some(777),
        ..CoreConfig::with_table2_levels()
    };
    for name in profiles::names() {
        let (fast, slow, _) = run_pair(name, &cfg, &fixed(2), 2_000, 3_000);
        assert_identical(name, &fast, &slow);
    }
}

#[test]
fn memory_bound_profiles_actually_fast_forward() {
    // The optimisation must engage where it matters: a pointer-chasing
    // profile at a fixed level spends most of its cycles with the window
    // full behind an L2 miss, and a large fraction of those must be
    // skipped rather than stepped.
    for name in ["libquantum", "mcf", "omnetpp", "GemsFDTD"] {
        let (fast, slow, skipped) = run_pair(name, &CoreConfig::default(), &fixed(0), 5_000, 8_000);
        assert_identical(name, &fast, &slow);
        assert!(
            skipped > fast.cycles / 10,
            "{name}: only {skipped} of {} cycles fast-forwarded",
            fast.cycles
        );
        assert!(
            fast.cpi_fraction(CpiBucket::MemoryStall) > 0.3,
            "{name}: profile is not memory-bound enough to exercise the path"
        );
    }
}

/// A policy that requests the top level and level 0 alternately, forcing
/// frequent transitions, and that opts into fast-forward by exposing the
/// next period boundary as its quiet horizon.
struct OscillatingPolicy {
    period: Cycle,
}

impl WindowPolicy for OscillatingPolicy {
    fn target_level(
        &mut self,
        now: Cycle,
        _l2_demand_misses: u32,
        _current_level: usize,
        max_level: usize,
    ) -> usize {
        if (now / self.period).is_multiple_of(2) {
            max_level
        } else {
            0
        }
    }

    fn quiet_until(&self, now: Cycle, _current_level: usize) -> Cycle {
        // The answer flips at the next multiple of `period`.
        (now / self.period + 1) * self.period
    }
}

#[test]
fn oscillating_policy_is_bit_identical_through_transitions() {
    let cfg = CoreConfig {
        interval_cycles: Some(400),
        ..CoreConfig::with_table2_levels()
    };
    let make =
        |period: Cycle| move || Box::new(OscillatingPolicy { period }) as Box<dyn WindowPolicy>;
    for (name, period) in [("libquantum", 200), ("mcf", 331), ("gcc", 250)] {
        let (fast, slow, _) = run_pair(name, &cfg, &make(period), 4_000, 12_000);
        assert_identical(name, &fast, &slow);
        assert!(
            fast.transitions_up > 0 && fast.transitions_down > 0,
            "{name}: oscillation must exercise the transition machinery"
        );
    }
}

#[test]
fn runahead_runs_are_bit_identical() {
    let cfg = CoreConfig {
        runahead: Some(mlpwin_ooo::RunaheadOpts::default()),
        interval_cycles: Some(600),
        ..CoreConfig::default()
    };
    for name in ["libquantum", "mcf", "milc"] {
        let (fast, slow, _) = run_pair(name, &cfg, &fixed(0), 5_000, 8_000);
        assert_identical(name, &fast, &slow);
        assert!(
            fast.runahead_episodes > 0,
            "{name}: runahead must actually trigger"
        );
    }
}

#[test]
fn compute_bound_profiles_are_identical_even_when_nothing_skips() {
    // Profiles that rarely stall exercise the "decline to skip" guards;
    // equivalence must hold regardless of how often the path fires.
    for name in ["sjeng", "bwaves", "gobmk"] {
        let (fast, slow, _) = run_pair(name, &CoreConfig::default(), &fixed(0), 3_000, 6_000);
        assert_identical(name, &fast, &slow);
    }
}
