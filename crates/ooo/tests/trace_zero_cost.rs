//! Tracing must never perturb the simulation.
//!
//! The statistics of a run are a pure function of the configuration's
//! *modelled* knobs; the observability knobs (`trace`) must be inert:
//! a `trace`-feature build with tracing enabled, a feature build with
//! tracing disabled at runtime, and a default build must all produce
//! bit-identical `CoreStats`. The non-feature half of this file runs in
//! every `cargo test`; the feature half under `--features trace`.

use mlpwin_ooo::{Core, CoreConfig, CoreStats, FixedLevelPolicy, TraceConfig};
use mlpwin_workloads::profiles;

fn run_with(trace: Option<TraceConfig>, insts: u64) -> CoreStats {
    let cfg = CoreConfig {
        trace,
        ..CoreConfig::default()
    };
    let w = profiles::by_name("libquantum", 7).expect("profile exists");
    let mut core = Core::new(cfg, w, Box::new(FixedLevelPolicy::new(0)));
    core.run_warmup(5_000).expect("warm-up must not stall");
    core.run(insts).expect("healthy run")
}

#[test]
fn trace_knob_never_changes_stats() {
    let off = run_with(None, 6_000);
    let on = run_with(Some(TraceConfig::default()), 6_000);
    let sampled = run_with(
        Some(TraceConfig {
            capacity: 128,
            llc_sample: 8,
        }),
        6_000,
    );
    assert_eq!(off, on, "enabling tracing must not change statistics");
    assert_eq!(off, sampled, "sampling must not change statistics");
}

#[cfg(feature = "trace")]
mod with_feature {
    use super::*;
    use mlpwin_ooo::TraceEventKind;

    fn build(trace: Option<TraceConfig>) -> Core<impl mlpwin_workloads::Workload> {
        let cfg = CoreConfig {
            trace,
            ..CoreConfig::default()
        };
        let w = profiles::by_name("libquantum", 7).expect("profile exists");
        Core::new(cfg, w, Box::new(FixedLevelPolicy::new(0)))
    }

    #[test]
    fn runtime_disabled_records_nothing() {
        let mut core = build(None);
        core.run(3_000).expect("healthy run");
        assert!(core.tracer().is_none(), "no knob, no tracer");
    }

    #[test]
    fn enabled_tracer_captures_llc_misses_on_a_memory_profile() {
        let mut core = build(Some(TraceConfig::default()));
        core.run_warmup(5_000).expect("warm-up must not stall");
        core.run(6_000).expect("healthy run");
        let tracer = core.tracer().expect("knob set, tracer allocated");
        assert!(tracer.recorded() > 0, "libquantum must produce events");
        assert!(
            tracer
                .events()
                .any(|e| matches!(e.kind, TraceEventKind::LlcMiss { .. })),
            "a memory-bound profile must log LLC misses"
        );
        // Events arrive in simulation order.
        let cycles: Vec<_> = tracer.events().map(|e| e.cycle).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn warmup_reset_restarts_the_trace() {
        let mut core = build(Some(TraceConfig::default()));
        core.run_warmup(6_000).expect("warm-up must not stall");
        let tracer = core.tracer().expect("tracer");
        assert_eq!(tracer.recorded(), 0, "warm-up events are discarded");
        assert_eq!(tracer.llc_misses_seen(), 0);
    }

    #[test]
    fn sampling_divisor_thins_the_event_stream() {
        let mut dense = build(Some(TraceConfig {
            capacity: 1 << 20,
            llc_sample: 1,
        }));
        dense.run(6_000).expect("healthy run");
        let mut sparse = build(Some(TraceConfig {
            capacity: 1 << 20,
            llc_sample: 16,
        }));
        sparse.run(6_000).expect("healthy run");
        let d = dense.tracer().expect("tracer");
        let s = sparse.tracer().expect("tracer");
        assert_eq!(
            d.llc_misses_seen(),
            s.llc_misses_seen(),
            "sampling filters recording, not observation"
        );
        assert!(
            s.recorded() < d.recorded(),
            "divisor 16 must record fewer events ({} vs {})",
            s.recorded(),
            d.recorded()
        );
    }
}
