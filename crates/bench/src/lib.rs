//! # mlpwin-bench
//!
//! The benchmark harness: one binary per table and figure of the paper
//! (run with `cargo run --release -p mlpwin-bench --bin fig7`), plus
//! Criterion micro-benchmarks of the hot simulator structures
//! (`cargo bench -p mlpwin-bench`).
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --insts N     measured instructions per run   (default per binary)
//! --warmup N    warm-up instructions per run    (default per binary)
//! --threads N   parallel runs                   (default: MLPWIN_THREADS
//!               when set, otherwise available cores)
//! --seed N      workload seed                   (default 1)
//! ```
//!
//! Budgets are scaled-down stand-ins for the paper's 16G-skip +
//! 100M-measure sampling; raising `--insts` tightens every number at
//! linear cost.

pub mod benchfile;

use mlpwin_ooo::CoreStats;
use mlpwin_sim::report::{cpi_stack_table, pct, try_geomean, ReportError};
use mlpwin_sim::runner::{RunOutcome, RunResult, RunSpec};
use mlpwin_workloads::{profiles, Category};
use std::env;

/// Command-line arguments shared by every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpArgs {
    /// Measured instructions per run.
    pub insts: u64,
    /// Warm-up instructions per run.
    pub warmup: u64,
    /// Worker threads for run matrices.
    pub threads: usize,
    /// Workload seed.
    pub seed: u64,
}

impl ExpArgs {
    /// Parses `std::env::args`, with the given per-binary defaults.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed flags.
    pub fn parse(default_warmup: u64, default_insts: u64) -> ExpArgs {
        Self::parse_from(env::args().skip(1), default_warmup, default_insts)
    }

    /// Testable parser core.
    pub fn parse_from<I: IntoIterator<Item = String>>(
        args: I,
        default_warmup: u64,
        default_insts: u64,
    ) -> ExpArgs {
        let mut out = ExpArgs {
            insts: default_insts,
            warmup: default_warmup,
            threads: RunSpec::threads_from_env(),
            seed: 1,
        };
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> u64 {
                it.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
                    .parse()
                    .unwrap_or_else(|e| panic!("{name}: {e}"))
            };
            match flag.as_str() {
                "--insts" => out.insts = take("--insts"),
                "--warmup" => out.warmup = take("--warmup"),
                "--threads" => out.threads = take("--threads") as usize,
                "--seed" => out.seed = take("--seed"),
                other => panic!("unknown flag {other}; expected --insts/--warmup/--threads/--seed"),
            }
        }
        assert!(out.insts > 0, "--insts must be positive");
        assert!(out.threads > 0, "--threads must be positive");
        out
    }
}

/// The paper's selected programs, memory-intensive first — the row set
/// every figure binary prints.
pub fn selected_profiles() -> Vec<&'static str> {
    profiles::SELECTED_MEM
        .iter()
        .chain(profiles::SELECTED_COMP.iter())
        .copied()
        .collect()
}

/// The three geometric-mean groups every figure summarizes: memory-
/// intensive, compute-intensive, and everything.
pub const GM_GROUPS: [(&str, Option<Category>); 3] = [
    ("GM mem", Some(Category::MemoryIntensive)),
    ("GM comp", Some(Category::ComputeIntensive)),
    ("GM all", None),
];

/// Geometric mean of the values whose category matches `cat` (all of
/// them for `None`), over `(category, value)` pairs.
///
/// # Errors
///
/// [`ReportError`] when the filtered set is empty or contains a
/// non-positive value.
pub fn try_category_geomean(
    per_cat: &[(Category, f64)],
    cat: Option<Category>,
) -> Result<f64, ReportError> {
    let values: Vec<f64> = per_cat
        .iter()
        .filter(|(c, _)| cat.is_none_or(|want| *c == want))
        .map(|(_, v)| *v)
        .collect();
    try_geomean(&values)
}

/// Prints one `GM mem / GM comp / GM all` summary line per group from
/// `(category, ratio)` pairs, skipping (with a stderr note) any group
/// whose inputs are degenerate.
pub fn print_geomean_summary(per_cat: &[(Category, f64)]) {
    for (label, cat) in GM_GROUPS {
        match try_category_geomean(per_cat, cat) {
            Ok(gm) => println!("{label}: {gm:.3} ({})", pct(gm - 1.0)),
            Err(e) => eprintln!("{label}: skipped ({e})"),
        }
    }
}

/// Prints each named run's per-level CPI-stack attribution table — the
/// "where did the cycles go" footer the figure binaries share.
pub fn print_cpi_stacks<'a, I>(entries: I)
where
    I: IntoIterator<Item = (&'a str, &'a CoreStats)>,
{
    for (name, stats) in entries {
        println!("{name}:");
        println!("{}", cpi_stack_table(stats));
    }
}

/// Unwraps a single run for a report binary: prints the typed error to
/// stderr and exits non-zero on failure.
pub fn expect_run(outcome: Result<RunResult, mlpwin_sim::SimError>) -> RunResult {
    outcome.unwrap_or_else(|error| {
        eprintln!("run failed: {error}");
        std::process::exit(1);
    })
}

/// Unwraps a matrix's outcomes for a report binary: prints every typed
/// failure to stderr and exits non-zero, so a partially failed campaign
/// never renders a table from incomplete data.
pub fn expect_results(outcomes: Vec<RunOutcome>) -> Vec<RunResult> {
    let mut results = Vec::with_capacity(outcomes.len());
    let mut failures = 0usize;
    for outcome in outcomes {
        match outcome {
            RunOutcome::Ok(r) => results.push(r),
            RunOutcome::Failed { error, attempts } => {
                failures += 1;
                eprintln!("run failed after {attempts} attempt(s): {error}");
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} run(s) failed; aborting report");
        std::process::exit(1);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_apply() {
        let a = ExpArgs::parse_from(argv(""), 10, 20);
        assert_eq!(a.warmup, 10);
        assert_eq!(a.insts, 20);
        assert_eq!(a.seed, 1);
        assert!(a.threads >= 1);
    }

    #[test]
    fn flags_override() {
        let a = ExpArgs::parse_from(argv("--insts 5 --warmup 7 --threads 2 --seed 9"), 1, 1);
        assert_eq!(
            a,
            ExpArgs {
                insts: 5,
                warmup: 7,
                threads: 2,
                seed: 9
            }
        );
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown_flags() {
        let _ = ExpArgs::parse_from(argv("--bogus 1"), 1, 1);
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn rejects_missing_value() {
        let _ = ExpArgs::parse_from(argv("--insts"), 1, 1);
    }

    #[test]
    fn selected_profiles_cover_both_categories() {
        let sel = selected_profiles();
        assert!(!sel.is_empty());
        assert!(sel.starts_with(&profiles::SELECTED_MEM));
        assert!(sel.ends_with(&profiles::SELECTED_COMP));
    }

    #[test]
    fn category_geomean_filters_before_aggregating() {
        let per_cat = [
            (Category::MemoryIntensive, 2.0),
            (Category::MemoryIntensive, 8.0),
            (Category::ComputeIntensive, 1.0),
        ];
        let mem =
            try_category_geomean(&per_cat, Some(Category::MemoryIntensive)).expect("mem group");
        assert!((mem - 4.0).abs() < 1e-12);
        let comp =
            try_category_geomean(&per_cat, Some(Category::ComputeIntensive)).expect("comp group");
        assert!((comp - 1.0).abs() < 1e-12);
        let all = try_category_geomean(&per_cat, None).expect("all");
        assert!((all - (2.0f64 * 8.0 * 1.0).powf(1.0 / 3.0)).abs() < 1e-9);
        // An empty group is a typed error, not a NaN.
        let only_comp = [(Category::ComputeIntensive, 1.0)];
        assert_eq!(
            try_category_geomean(&only_comp, Some(Category::MemoryIntensive)),
            Err(ReportError::EmptyInput)
        );
    }
}
