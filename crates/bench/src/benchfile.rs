//! The `BENCH.json` schema: the machine-readable host-performance
//! baseline the `mlpwin-bench` binary writes and regresses against.
//!
//! A report records one pinned suite run: per-entry wall-clock and
//! simulated work (from which throughput derives), plus process-level
//! peak RSS. The file is schema-versioned like the results journal —
//! a reader rejects unknown schemas instead of misreading them — and
//! uses the workspace's std-only [`Json`] module, so it round-trips
//! byte-for-byte through [`BenchReport::encode`]/[`BenchReport::parse`].

use mlpwin_sim::json::{num, s, Json};
use std::collections::BTreeMap;

/// The `BENCH.json` schema this build writes and reads.
pub const BENCH_SCHEMA: u64 = 1;

/// Fractional throughput drop that fails the regression gate: a current
/// run below `1 - 0.15` of the baseline's aggregate throughput exits
/// nonzero.
pub const REGRESSION_THRESHOLD: f64 = 0.15;

/// One suite entry: a `(profile, model)` run at a pinned budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Workload profile name.
    pub profile: String,
    /// Model tag (`SimModel::tag`).
    pub model: String,
    /// Warm-up instructions.
    pub warmup: u64,
    /// Measured instructions.
    pub insts: u64,
    /// Wall-clock seconds for the whole run (build + warm-up + measure).
    pub wall_secs: f64,
    /// Simulated cycles in the measured phase.
    pub sim_cycles: u64,
    /// Committed instructions in the measured phase.
    pub sim_insts: u64,
    /// The interval-parallel leg (`mlpwin-bench --split N`), when run.
    pub split: Option<BenchSplit>,
    /// The event-driven scheduling leg, when run.
    pub event: Option<BenchEvent>,
}

/// The event-engine rider on a suite entry: the same spec re-run with
/// `MLPWIN_EVENT_DRIVEN` set (results asserted bit-identical before the
/// rider is recorded). `speedup` is the stepped row's wall clock over
/// the event-driven wall clock — above 1 the fold into the wake plan
/// paid for itself, below 1 it cost host time for the generality of
/// memory-side wakeups.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEvent {
    /// Wall-clock seconds of the event-driven run.
    pub wall_secs: f64,
    /// Fraction of all cycles (warm-up included) advanced in bulk.
    pub skip_fraction: f64,
    /// Stepped `wall_secs` over event-driven `wall_secs`.
    pub speedup: f64,
}

/// The `--split N` rider on a suite entry: the same spec re-analyzed
/// through the sampled interval-parallel runner against a fresh sweep.
/// `speedup` compares the serial row's full wall clock to phase 2 alone
/// — the cost of *re-analyzing* a run whose snapshot sweep is already
/// on disk, which is the workflow the split runner exists for (the
/// one-time sweep cost is `sweep_secs`, amortized across analyses).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSplit {
    /// Sampling stride / phase-2 worker count (the `--split` value).
    pub stride: u64,
    /// Interval length in measured cycles.
    pub interval_cycles: u64,
    /// Total intervals the run split into.
    pub intervals: u64,
    /// Intervals phase 2 actually simulated.
    pub simulated: u64,
    /// Wall seconds of the one-time serial snapshot sweep.
    pub sweep_secs: f64,
    /// Wall seconds of phase 2 (restore + simulate sampled intervals).
    pub phase2_secs: f64,
    /// Serial `wall_secs` over `phase2_secs`.
    pub speedup: f64,
}

impl BenchEntry {
    /// Simulated kilocycles per wall-clock second.
    pub fn kcps(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.sim_cycles as f64 / 1e3 / self.wall_secs
    }

    /// Million simulated instructions per wall-clock second.
    pub fn mips(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.sim_insts as f64 / 1e6 / self.wall_secs
    }
}

/// A complete `BENCH.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`BENCH_SCHEMA`]).
    pub schema: u64,
    /// Peak resident set size in kB, when the platform exposes it.
    pub peak_rss_kb: Option<u64>,
    /// One entry per suite run, in suite order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Total wall-clock seconds across the suite.
    pub fn total_wall_secs(&self) -> f64 {
        self.entries.iter().map(|e| e.wall_secs).sum()
    }

    /// Aggregate simulated kilocycles per wall-clock second: total
    /// cycles over total wall time, the regression gate's headline
    /// number.
    pub fn total_kcps(&self) -> f64 {
        let wall = self.total_wall_secs();
        if wall <= 0.0 {
            return 0.0;
        }
        self.entries.iter().map(|e| e.sim_cycles).sum::<u64>() as f64 / 1e3 / wall
    }

    /// Aggregate million simulated instructions per wall-clock second.
    pub fn total_mips(&self) -> f64 {
        let wall = self.total_wall_secs();
        if wall <= 0.0 {
            return 0.0;
        }
        self.entries.iter().map(|e| e.sim_insts).sum::<u64>() as f64 / 1e6 / wall
    }

    /// Serializes to the `BENCH.json` document (pretty enough to diff:
    /// canonical key order, one line).
    pub fn encode(&self) -> String {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                let mut m = BTreeMap::new();
                m.insert("profile".to_string(), s(&e.profile));
                m.insert("model".to_string(), s(&e.model));
                m.insert("warmup".to_string(), num(e.warmup));
                m.insert("insts".to_string(), num(e.insts));
                m.insert("wall_secs".to_string(), Json::Num(e.wall_secs));
                m.insert("sim_cycles".to_string(), num(e.sim_cycles));
                m.insert("sim_insts".to_string(), num(e.sim_insts));
                m.insert("kcps".to_string(), Json::Num(e.kcps()));
                m.insert("mips".to_string(), Json::Num(e.mips()));
                if let Some(sp) = &e.split {
                    let mut sm = BTreeMap::new();
                    sm.insert("stride".to_string(), num(sp.stride));
                    sm.insert("interval_cycles".to_string(), num(sp.interval_cycles));
                    sm.insert("intervals".to_string(), num(sp.intervals));
                    sm.insert("simulated".to_string(), num(sp.simulated));
                    sm.insert("sweep_secs".to_string(), Json::Num(sp.sweep_secs));
                    sm.insert("phase2_secs".to_string(), Json::Num(sp.phase2_secs));
                    sm.insert("speedup".to_string(), Json::Num(sp.speedup));
                    m.insert("split".to_string(), Json::Obj(sm));
                }
                if let Some(ev) = &e.event {
                    let mut em = BTreeMap::new();
                    em.insert("wall_secs".to_string(), Json::Num(ev.wall_secs));
                    em.insert("skip_fraction".to_string(), Json::Num(ev.skip_fraction));
                    em.insert("speedup".to_string(), Json::Num(ev.speedup));
                    m.insert("event".to_string(), Json::Obj(em));
                }
                Json::Obj(m)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert("schema".to_string(), num(self.schema));
        root.insert(
            "peak_rss_kb".to_string(),
            self.peak_rss_kb.map_or(Json::Null, num),
        );
        root.insert("entries".to_string(), Json::Arr(entries));
        root.insert(
            "total_wall_secs".to_string(),
            Json::Num(self.total_wall_secs()),
        );
        root.insert("total_kcps".to_string(), Json::Num(self.total_kcps()));
        root.insert("total_mips".to_string(), Json::Num(self.total_mips()));
        Json::Obj(root).encode()
    }

    /// Parses and validates a `BENCH.json` document.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first structural problem:
    /// invalid JSON, unknown schema, or a malformed entry. The derived
    /// `total_*`/`kcps`/`mips` fields are recomputed, not trusted.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("missing schema field")?;
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "unknown BENCH.json schema {schema} (this build reads {BENCH_SCHEMA})"
            ));
        }
        let peak_rss_kb = match doc.get("peak_rss_kb") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or("peak_rss_kb is not an integer")?),
        };
        let raw = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("missing entries array")?;
        let mut entries = Vec::with_capacity(raw.len());
        for (i, e) in raw.iter().enumerate() {
            let field_u64 = |k: &str| {
                e.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("entry {i}: bad field `{k}`"))
            };
            let wall_secs = e
                .get("wall_secs")
                .and_then(Json::as_f64)
                .filter(|w| w.is_finite() && *w >= 0.0)
                .ok_or_else(|| format!("entry {i}: bad field `wall_secs`"))?;
            let split = match e.get("split") {
                None | Some(Json::Null) => None,
                Some(sp) => {
                    let sp_u64 = |k: &str| {
                        sp.get(k)
                            .and_then(Json::as_u64)
                            .ok_or_else(|| format!("entry {i}: bad split field `{k}`"))
                    };
                    let sp_f64 = |k: &str| {
                        sp.get(k)
                            .and_then(Json::as_f64)
                            .filter(|v| v.is_finite() && *v >= 0.0)
                            .ok_or_else(|| format!("entry {i}: bad split field `{k}`"))
                    };
                    Some(BenchSplit {
                        stride: sp_u64("stride")?,
                        interval_cycles: sp_u64("interval_cycles")?,
                        intervals: sp_u64("intervals")?,
                        simulated: sp_u64("simulated")?,
                        sweep_secs: sp_f64("sweep_secs")?,
                        phase2_secs: sp_f64("phase2_secs")?,
                        speedup: sp_f64("speedup")?,
                    })
                }
            };
            let event = match e.get("event") {
                None | Some(Json::Null) => None,
                Some(ev) => {
                    let ev_f64 = |k: &str| {
                        ev.get(k)
                            .and_then(Json::as_f64)
                            .filter(|v| v.is_finite() && *v >= 0.0)
                            .ok_or_else(|| format!("entry {i}: bad event field `{k}`"))
                    };
                    Some(BenchEvent {
                        wall_secs: ev_f64("wall_secs")?,
                        skip_fraction: ev_f64("skip_fraction")?,
                        speedup: ev_f64("speedup")?,
                    })
                }
            };
            entries.push(BenchEntry {
                profile: e
                    .get("profile")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("entry {i}: bad field `profile`"))?
                    .to_string(),
                model: e
                    .get("model")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("entry {i}: bad field `model`"))?
                    .to_string(),
                warmup: field_u64("warmup")?,
                insts: field_u64("insts")?,
                wall_secs,
                sim_cycles: field_u64("sim_cycles")?,
                sim_insts: field_u64("sim_insts")?,
                split,
                event,
            });
        }
        if entries.is_empty() {
            return Err("entries array is empty".to_string());
        }
        Ok(BenchReport {
            schema,
            peak_rss_kb,
            entries,
        })
    }
}

/// The fractional aggregate-throughput drop of `current` against
/// `baseline` (positive = slower, negative = faster); `None` when the
/// baseline's throughput is degenerate (zero wall time or zero cycles).
pub fn throughput_drop(baseline: &BenchReport, current: &BenchReport) -> Option<f64> {
    let base = baseline.total_kcps();
    if base <= 0.0 {
        return None;
    }
    Some(1.0 - current.total_kcps() / base)
}

/// Aggregate kcycles/s over the entries `select` accepts.
fn selected_kcps(report: &BenchReport, select: impl Fn(&BenchEntry) -> bool) -> f64 {
    let picked: Vec<&BenchEntry> = report.entries.iter().filter(|e| select(e)).collect();
    let wall: f64 = picked.iter().map(|e| e.wall_secs).sum();
    if wall <= 0.0 {
        return 0.0;
    }
    picked.iter().map(|e| e.sim_cycles).sum::<u64>() as f64 / 1e3 / wall
}

/// Like [`throughput_drop`], restricted to the entries `select` accepts
/// *and* whose `(profile, model)` row exists in both reports — so a
/// suite that grows (or shrinks) rows still gates like-for-like, with
/// fresh rows neither inflating nor masking the comparison. `None` when
/// the matched baseline rows are degenerate or there is no overlap.
pub fn matched_drop(
    baseline: &BenchReport,
    current: &BenchReport,
    select: impl Fn(&BenchEntry) -> bool,
) -> Option<f64> {
    let keys = |r: &BenchReport| -> Vec<(String, String)> {
        r.entries
            .iter()
            .map(|e| (e.profile.clone(), e.model.clone()))
            .collect()
    };
    let (bk, ck) = (keys(baseline), keys(current));
    let in_both = |e: &BenchEntry| {
        let key = (e.profile.clone(), e.model.clone());
        bk.contains(&key) && ck.contains(&key)
    };
    let base = selected_kcps(baseline, |e| select(e) && in_both(e));
    if base <= 0.0 {
        return None;
    }
    Some(1.0 - selected_kcps(current, |e| select(e) && in_both(e)) / base)
}

/// Peak resident set size of this process in kB, from
/// `/proc/self/status` `VmHWM` — `None` on platforms without procfs.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            schema: BENCH_SCHEMA,
            peak_rss_kb: Some(20_480),
            entries: vec![
                BenchEntry {
                    profile: "libquantum".to_string(),
                    model: "resizing".to_string(),
                    warmup: 2_000,
                    insts: 2_000,
                    wall_secs: 0.5,
                    sim_cycles: 10_000,
                    sim_insts: 2_100,
                    split: Some(BenchSplit {
                        stride: 4,
                        interval_cycles: 4_096,
                        intervals: 12,
                        simulated: 4,
                        sweep_secs: 0.6,
                        phase2_secs: 0.1,
                        speedup: 5.0,
                    }),
                    event: Some(BenchEvent {
                        wall_secs: 0.45,
                        skip_fraction: 0.85,
                        speedup: 0.5 / 0.45,
                    }),
                },
                BenchEntry {
                    profile: "gcc".to_string(),
                    model: "base".to_string(),
                    warmup: 2_000,
                    insts: 2_000,
                    wall_secs: 1.5,
                    sim_cycles: 6_000,
                    sim_insts: 2_100,
                    split: None,
                    event: None,
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_its_schema() {
        let report = sample();
        let text = report.encode();
        let parsed = BenchReport::parse(&text).expect("round trip");
        assert_eq!(parsed, report);
    }

    #[test]
    fn throughput_math() {
        let r = sample();
        // 16k cycles over 2s = 8 kcyc/s; 4200 insts over 2s = 0.0021 M/s.
        assert!((r.total_wall_secs() - 2.0).abs() < 1e-12);
        assert!((r.total_kcps() - 8.0).abs() < 1e-9);
        assert!((r.total_mips() - 0.0021).abs() < 1e-12);
        assert!((r.entries[0].kcps() - 20.0).abs() < 1e-9);
        let degenerate = BenchEntry {
            wall_secs: 0.0,
            ..r.entries[0].clone()
        };
        assert_eq!(degenerate.kcps(), 0.0);
        assert_eq!(degenerate.mips(), 0.0);
    }

    #[test]
    fn regression_gate_math() {
        let baseline = sample();
        let mut slower = sample();
        for e in &mut slower.entries {
            e.wall_secs *= 2.0; // half the throughput
        }
        let drop = throughput_drop(&baseline, &slower).expect("baseline is healthy");
        assert!((drop - 0.5).abs() < 1e-9, "drop = {drop}");
        assert!(drop > REGRESSION_THRESHOLD);
        let same = throughput_drop(&baseline, &baseline).expect("healthy");
        assert!(same.abs() < 1e-12);
        let mut faster = sample();
        for e in &mut faster.entries {
            e.wall_secs /= 2.0;
        }
        assert!(throughput_drop(&baseline, &faster).expect("healthy") < 0.0);
        // A degenerate baseline cannot gate anything.
        let mut dead = sample();
        for e in &mut dead.entries {
            e.wall_secs = 0.0;
        }
        assert!(throughput_drop(&dead, &baseline).is_none());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(BenchReport::parse("not json").is_err());
        assert!(BenchReport::parse("{}")
            .expect_err("no schema")
            .contains("schema"));
        let future = sample().encode().replace("\"schema\":1", "\"schema\":9");
        assert!(BenchReport::parse(&future)
            .expect_err("unknown schema")
            .contains("unknown"));
        let empty = r#"{"schema":1,"peak_rss_kb":null,"entries":[]}"#;
        assert!(BenchReport::parse(empty)
            .expect_err("no entries")
            .contains("empty"));
        let bad_entry = r#"{"schema":1,"entries":[{"profile":"x"}]}"#;
        assert!(BenchReport::parse(bad_entry).is_err());
        // A split rider missing a field is rejected, not silently None.
        let bad_split = sample().encode().replace("\"stride\":4,", "\"stride\":-4,");
        assert!(BenchReport::parse(&bad_split)
            .expect_err("bad split stride")
            .contains("split"));
        // So is a malformed event rider.
        let bad_event = sample()
            .encode()
            .replace("\"skip_fraction\":0.85,", "\"skip_fraction\":\"x\",");
        assert!(BenchReport::parse(&bad_event)
            .expect_err("bad event skip fraction")
            .contains("event"));
    }

    #[test]
    fn matched_drop_gates_like_for_like_when_the_suite_grows() {
        let baseline = sample();
        let mut grown = sample();
        // A fresh, very fast row joins the suite: it must not inflate
        // (or be gated by) the matched comparison.
        grown.entries.push(BenchEntry {
            profile: "chase-batch".to_string(),
            model: "base".to_string(),
            warmup: 2_000,
            insts: 2_000,
            wall_secs: 0.01,
            sim_cycles: 1_000_000,
            sim_insts: 2_000,
            split: None,
            event: None,
        });
        let all = |_: &BenchEntry| true;
        let drop = matched_drop(&baseline, &grown, all).expect("healthy overlap");
        assert!(drop.abs() < 1e-12, "unchanged matched rows: drop = {drop}");
        // The unmatched total, by contrast, explodes upward.
        assert!(throughput_drop(&baseline, &grown).expect("healthy") < -1.0);
        // A real regression on a matched row is still caught.
        let mut slower = grown.clone();
        slower.entries[1].wall_secs *= 10.0;
        let gcc_only = |e: &BenchEntry| e.profile == "gcc";
        let drop = matched_drop(&baseline, &slower, gcc_only).expect("healthy");
        assert!((drop - 0.9).abs() < 1e-9, "drop = {drop}");
        // No overlap (or a dead baseline) cannot gate.
        assert!(matched_drop(&baseline, &grown, |e| e.profile == "chase-batch").is_none());
    }

    #[test]
    fn entries_without_split_riders_still_parse() {
        // The committed baselines written before the --split leg carry
        // no `split` key at all.
        let legacy = r#"{"schema":1,"peak_rss_kb":null,"entries":[{"profile":"mcf",
            "model":"base","warmup":1,"insts":2,"wall_secs":0.5,
            "sim_cycles":100,"sim_insts":2}]}"#;
        let report = BenchReport::parse(legacy).expect("legacy entries parse");
        assert_eq!(report.entries[0].split, None);
    }

    #[test]
    fn peak_rss_is_present_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_kb().expect("procfs available");
            assert!(rss > 0);
        }
    }
}
