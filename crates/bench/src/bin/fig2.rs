//! **Figure 2** — IPC for varying instruction window resource levels on
//! libquantum (memory-intensive) and gcc (compute-intensive), for the
//! fixed (pipelined) and ideal (un-pipelined) models, normalized to
//! level 1.
//!
//! The paper's shape: libquantum's bars rise steeply with level and the
//! ideal line sits barely above them (pipelining costs nothing when
//! memory dominates); gcc's bars stay flat or dip below 1.0 while the
//! ideal line stays at ~1.0 (enlarging buys nothing, pipelining hurts).
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin fig2
//! ```

use mlpwin_bench::ExpArgs;
use mlpwin_sim::report::TextTable;
use mlpwin_sim::runner::{run_matrix, RunSpec};
use mlpwin_sim::SimModel;

fn main() {
    let args = ExpArgs::parse(250_000, 60_000);
    let mut specs = Vec::new();
    for p in ["libquantum", "gcc"] {
        for l in 1..=3 {
            specs.push(RunSpec::new(p, SimModel::Fixed(l)).with_budget(args.warmup, args.insts));
            specs.push(RunSpec::new(p, SimModel::Ideal(l)).with_budget(args.warmup, args.insts));
        }
    }
    let results = mlpwin_bench::expect_results(run_matrix(&specs, args.threads));
    let ipc = |p: &str, m: SimModel| {
        results
            .iter()
            .find(|r| r.spec.profile == p && r.spec.model == m)
            .expect("ran above")
            .ipc()
    };

    for p in ["libquantum", "gcc"] {
        let base = ipc(p, SimModel::Fixed(1));
        println!(
            "Figure 2({}): {p} — relative IPC vs window resource level",
            if p == "libquantum" { "a" } else { "b" }
        );
        let mut t = TextTable::new(vec!["level", "fixed (bars)", "ideal (line)"]);
        for l in 1..=3 {
            t.row(vec![
                format!("{l}"),
                format!("{:.2}", ipc(p, SimModel::Fixed(l)) / base),
                format!("{:.2}", ipc(p, SimModel::Ideal(l)) / base),
            ]);
        }
        println!("{}", t.render());
    }
    println!("paper shape: libquantum bars rise steeply, ideal ~= fixed;");
    println!("             gcc bars flat/below 1.0, ideal stays ~1.0");
}
