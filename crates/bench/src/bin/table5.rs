//! **Table 5** — average number of committed instructions between
//! adjacent mispredicted branches, on the base processor.
//!
//! The paper's point: the distance is large relative to the window size
//! (especially for memory-intensive programs), so wrong-path loads bring
//! few lines into the L2 (Fig. 11). Absolute distances depend on the
//! synthetic branch populations; the ordering (libquantum/milc/lbm
//! enormous, gobmk/sjeng/soplex/omnetpp small) is the reproduced shape.
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin table5
//! ```

use mlpwin_bench::ExpArgs;
use mlpwin_sim::report::TextTable;
use mlpwin_sim::runner::{run_matrix, RunSpec};
use mlpwin_sim::SimModel;

/// The paper's Table 5 values for side-by-side display.
const PAPER: &[(&str, f64)] = &[
    ("libquantum", 3_703_704.0),
    ("omnetpp", 178.0),
    ("GemsFDTD", 10_064.0),
    ("lbm", 32_830.0),
    ("leslie3d", 1_608.0),
    ("milc", 3_448_276.0),
    ("soplex", 154.0),
    ("sphinx3", 327.0),
    ("gcc", 5_323.0),
    ("gobmk", 71.0),
    ("sjeng", 116.0),
    ("bwaves", 169.0),
    ("dealII", 1_294.0),
    ("tonto", 423.0),
];

fn main() {
    let args = ExpArgs::parse(250_000, 100_000);
    let specs: Vec<RunSpec> = PAPER
        .iter()
        .map(|(p, _)| RunSpec::new(p, SimModel::Base).with_budget(args.warmup, args.insts))
        .collect();
    let results = mlpwin_bench::expect_results(run_matrix(&specs, args.threads));

    println!("Table 5: committed instructions between adjacent mispredicted branches\n");
    let mut t = TextTable::new(vec!["program", "cat", "measured", "paper", "mispredicts"]);
    for ((p, paper), r) in PAPER.iter().zip(&results) {
        let d = r.stats.mispredict_distance();
        let measured = if r.stats.committed_mispredicts == 0 {
            format!(">{:.0}", d)
        } else {
            format!("{d:.0}")
        };
        t.row(vec![
            p.to_string(),
            r.category.label().to_string(),
            measured,
            format!("{paper:.0}"),
            format!("{}", r.stats.committed_mispredicts),
        ]);
    }
    println!("{}", t.render());

    // Ordering check: the three near-perfectly-predicted programs must
    // dwarf the branchy ones.
    let dist = |name: &str| {
        results
            .iter()
            .find(|r| r.spec.profile == name)
            .expect("ran")
            .stats
            .mispredict_distance()
    };
    let huge = ["libquantum", "milc", "lbm"].map(dist);
    let small = ["gobmk", "sjeng", "soplex", "omnetpp"].map(dist);
    let sep =
        huge.iter().copied().fold(f64::MAX, f64::min) / small.iter().copied().fold(0.0, f64::max);
    println!(
        "ordering check: min(libquantum, milc, lbm) / max(gobmk, sjeng, soplex, omnetpp) = {sep:.0}x"
    );
}
