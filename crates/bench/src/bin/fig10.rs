//! **Figure 10** — dynamic resizing vs spending a comparable area on a
//! larger L2 (2.5 MB, 5-way instead of 2 MB, 4-way).
//!
//! The paper: the enlarged L2 buys ~0.6% average IPC while dynamic
//! resizing buys ~21% for ~1.3× *less* area — window resources are a far
//! better use of transistors than more last-level cache.
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin fig10
//! ```

use mlpwin_bench::ExpArgs;
use mlpwin_energy::AreaModel;
use mlpwin_sim::report::{geomean, pct, TextTable};
use mlpwin_sim::runner::{run_matrix, RunSpec};
use mlpwin_sim::SimModel;
use mlpwin_workloads::profiles;

fn main() {
    let args = ExpArgs::parse(250_000, 60_000);
    let names = profiles::names();
    let mut specs = Vec::new();
    for p in &names {
        for m in [SimModel::Base, SimModel::BigL2, SimModel::Dynamic] {
            specs.push(RunSpec::new(p, m).with_budget(args.warmup, args.insts));
        }
    }
    let results = mlpwin_bench::expect_results(run_matrix(&specs, args.threads));
    let ipc = |p: &str, m: SimModel| {
        results
            .iter()
            .find(|r| r.spec.profile == p && r.spec.model == m)
            .expect("ran")
            .ipc()
    };

    println!("Figure 10: enlarged-L2 model vs dynamic resizing (IPC vs base)\n");
    let selected: Vec<&str> = profiles::SELECTED_MEM
        .iter()
        .chain(profiles::SELECTED_COMP.iter())
        .copied()
        .collect();
    let mut t = TextTable::new(vec!["program", "2.5MB L2", "Res"]);
    for p in &selected {
        let base = ipc(p, SimModel::Base);
        t.row(vec![
            p.to_string(),
            format!("{:.3}", ipc(p, SimModel::BigL2) / base),
            format!("{:.3}", ipc(p, SimModel::Dynamic) / base),
        ]);
    }
    println!("{}", t.render());

    let gm = |m: SimModel| {
        geomean(
            &names
                .iter()
                .map(|p| ipc(p, m) / ipc(p, SimModel::Base))
                .collect::<Vec<_>>(),
        )
    };
    let l2_gain = gm(SimModel::BigL2);
    let res_gain = gm(SimModel::Dynamic);
    println!(
        "GM all: enlarged L2 {} | dynamic resizing {}",
        pct(l2_gain - 1.0),
        pct(res_gain - 1.0)
    );

    let area = AreaModel::new();
    let l2_extra =
        area.l2_area_mm2(2 * 1024 * 1024 + 512 * 1024) - area.l2_area_mm2(2 * 1024 * 1024);
    println!(
        "\narea: +{:.2} mm2 for the L2 vs +1.60 mm2 for the window (ratio {:.2}x)",
        l2_extra,
        l2_extra / 1.6
    );
    println!("paper: enlarged L2 +0.6% vs resizing +21% at ~1.3x the area");
}
