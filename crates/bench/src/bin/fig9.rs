//! **Figure 9** — energy efficiency (performance per energy, i.e.
//! normalized 1/EDP) of dynamic resizing relative to the base processor.
//!
//! The paper: large gains on memory-intensive programs (time saved
//! dwarfs the window's extra power; libquantum is the extreme), roughly
//! break-even to slightly negative on compute-intensive programs (the
//! provisioned-but-gated window leaks a little with no speedup);
//! averages +36% (mem), −8% (comp), +8% (all).
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin fig9
//! ```

use mlpwin_bench::{print_geomean_summary, selected_profiles, ExpArgs};
use mlpwin_energy::EnergyModel;
use mlpwin_sim::report::TextTable;
use mlpwin_sim::runner::{run_matrix, RunSpec};
use mlpwin_sim::SimModel;
use mlpwin_workloads::{profiles, Category};

fn main() {
    let args = ExpArgs::parse(250_000, 60_000);
    let names = profiles::names();
    let mut specs = Vec::new();
    for p in &names {
        specs.push(RunSpec::new(p, SimModel::Base).with_budget(args.warmup, args.insts));
        specs.push(RunSpec::new(p, SimModel::Dynamic).with_budget(args.warmup, args.insts));
    }
    let results = mlpwin_bench::expect_results(run_matrix(&specs, args.threads));
    let energy = EnergyModel::default();

    println!("Figure 9: energy efficiency (1/EDP) of dynamic resizing vs base\n");
    let mut t = TextTable::new(vec![
        "program",
        "cat",
        "IPC ratio",
        "energy ratio",
        "1/EDP rel",
    ]);
    let mut per_cat: Vec<(Category, f64)> = Vec::new();
    let selected = selected_profiles();
    for p in &names {
        let base = results
            .iter()
            .find(|r| r.spec.profile == *p && r.spec.model == SimModel::Base)
            .expect("ran");
        let dynr = results
            .iter()
            .find(|r| r.spec.profile == *p && r.spec.model == SimModel::Dynamic)
            .expect("ran");
        let bc = base.run_counters().expect("non-empty ladder");
        let dc = dynr.run_counters().expect("non-empty ladder");
        let rel = energy.relative_inverse_edp(&bc, &dc);
        per_cat.push((base.category, rel));
        if selected.contains(p) {
            t.row(vec![
                p.to_string(),
                base.category.label().to_string(),
                format!("{:.2}", dynr.ipc() / base.ipc()),
                format!(
                    "{:.2}",
                    energy.energy(&dc).total_pj() / energy.energy(&bc).total_pj()
                ),
                format!("{rel:.2}"),
            ]);
        }
    }
    println!("{}", t.render());

    print_geomean_summary(&per_cat);
    println!("\npaper: GM mem +36%, GM comp -8%, GM all +8% (libquantum extreme ~+423%)");

    // The energy story's denominator: where the dynamic model's cycles
    // went on the extremes of each category.
    println!("\nCPI-stack attribution, dynamic resizing (% of each level's cycles):\n");
    mlpwin_bench::print_cpi_stacks(
        [profiles::SELECTED_MEM[0], profiles::SELECTED_COMP[0]]
            .into_iter()
            .map(|p| {
                let r = results
                    .iter()
                    .find(|r| r.spec.profile == p && r.spec.model == SimModel::Dynamic)
                    .expect("ran");
                (p, &r.stats)
            }),
    );
}
