//! **Software-MLP kernels** — the Cimple-style batched pointer-chase
//! and hash-probe profiles, against `mcf` as the unbatched baseline.
//!
//! Cimple (PAPERS.md) shows software restructuring — interleaving B
//! independent pointer chases, batching hash-table probes — turns
//! serial miss chains into overlapped ones. These profiles model the
//! *result* of that transform, and the three programs land in three
//! distinct regimes: `mcf`'s serial chase has no MLP for any window to
//! find; `chase-batch`'s software pipelining already extracted it all
//! (the memory system saturates at the base window, so the enlarged
//! window the miss-driven policy picks buys nothing — misses are not
//! marginal MLP); `hash-probe`'s narrower batches leave headroom the
//! dynamic window harvests. All three spend most host cycles in the
//! sparse-event regime the event engine bulk-advances (the `skip`
//! column).
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin swmlp
//! ```

use mlpwin_bench::ExpArgs;
use mlpwin_sim::report::TextTable;
use mlpwin_sim::runner::{run_matrix, RunSpec};
use mlpwin_sim::SimModel;

fn main() {
    let args = ExpArgs::parse(100_000, 40_000);
    let programs = ["mcf", "chase-batch", "hash-probe"];
    let models = [SimModel::Base, SimModel::Dynamic, SimModel::Runahead];
    let mut specs = Vec::new();
    for p in programs {
        for model in models {
            let mut spec = RunSpec::new(p, model).with_budget(args.warmup, args.insts);
            spec.seed = args.seed;
            specs.push(spec);
        }
    }
    let results = mlpwin_bench::expect_results(run_matrix(&specs, args.threads));
    let find = |p: &str, m: SimModel| {
        results
            .iter()
            .find(|r| r.spec.profile == p && r.spec.model == m)
            .expect("ran above")
    };

    let mut t = TextTable::new(vec![
        "program", "model", "IPC", "vs base", "load lat", "avg lvl", "skip", "ev/kcyc",
    ]);
    for p in programs {
        let base_ipc = find(p, SimModel::Base).ipc();
        for m in models {
            let r = find(p, m);
            let kcycles = (r.stats.cycles as f64 / 1e3).max(1e-9);
            // Residency-weighted mean window level, 1-based like Fig. 2.
            let avg_level = r
                .stats
                .level_cycles
                .iter()
                .enumerate()
                .map(|(l, &c)| (l + 1) as f64 * c as f64)
                .sum::<f64>()
                / r.stats.cycles.max(1) as f64;
            t.row(vec![
                p.to_string(),
                r.spec.model.tag(),
                format!("{:.3}", r.ipc()),
                format!("{:.2}x", r.ipc() / base_ipc),
                format!("{:.1}", r.avg_load_latency),
                format!("{:.2}", avg_level),
                format!("{:.0}%", r.engine.skip_fraction() * 100.0),
                format!("{:.1}", r.engine.events_posted as f64 / kcycles),
            ]);
        }
    }
    println!("Software-MLP kernels (Cimple-style batching) vs serial chase:");
    println!("{}", t.render());
    println!("expected shape: serial mcf has no MLP to harvest; chase-batch's");
    println!("batching already extracted it in software (the grown window");
    println!("buys ~0); hash-probe's residual MLP rewards the dynamic window.");
}
