//! **Ablation: shrink-timing policy.**
//!
//! The paper shrinks one memory latency after the last L2 miss. How
//! sensitive is that choice? This sweep scales the shrink timeout
//! (0.25x, 0.5x, 1x, 2x, 4x of the memory latency) and reports GM IPC
//! per category — showing the design point is flat near 1x (the paper's
//! "simple and cheap" argument) while aggressive shrinking thrashes.
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin ablate_policy
//! ```

use mlpwin_bench::ExpArgs;
use mlpwin_core::DynamicResizingPolicy;
use mlpwin_ooo::{Core, CoreConfig, LevelSpec};
use mlpwin_sim::report::{geomean, pct, TextTable};
use mlpwin_workloads::{profiles, Category};

fn run_one(name: &str, timeout: u32, warmup: u64, insts: u64, seed: u64) -> f64 {
    let config = CoreConfig {
        levels: LevelSpec::table2(),
        ..CoreConfig::default()
    };
    let w = profiles::by_name(name, seed).expect("profile");
    let mut core = Core::new(config, w, Box::new(DynamicResizingPolicy::new(timeout)));
    core.run_warmup(warmup).expect("warm-up must not stall");
    core.run(insts).expect("healthy run").ipc()
}

fn main() {
    let args = ExpArgs::parse(150_000, 40_000);
    let names = profiles::names();
    let factors = [0.25f64, 0.5, 1.0, 2.0, 4.0];
    let timeouts: Vec<u32> = factors.iter().map(|f| (300.0 * f) as u32).collect();

    println!("Ablation: shrink timeout as a multiple of the memory latency\n");
    let mut per_run: Vec<Vec<f64>> = vec![vec![0.0; timeouts.len()]; names.len()];
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Vec<f64>>> = (0..names.len())
        .map(|_| std::sync::Mutex::new(vec![0.0; timeouts.len()]))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..args.threads.min(names.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= names.len() {
                    break;
                }
                let v: Vec<f64> = timeouts
                    .iter()
                    .map(|&to| run_one(names[i], to, args.warmup, args.insts, args.seed))
                    .collect();
                *slots[i].lock().expect("slot") = v;
            });
        }
    });
    for (i, s) in slots.into_iter().enumerate() {
        per_run[i] = s.into_inner().expect("slot");
    }

    let mut t = TextTable::new(vec!["group", "0.25x", "0.5x", "1x (paper)", "2x", "4x"]);
    for (label, cat) in [
        ("GM mem", Some(Category::MemoryIntensive)),
        ("GM comp", Some(Category::ComputeIntensive)),
        ("GM all", None),
    ] {
        let idx: Vec<usize> = names
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                cat.is_none_or(|c| profiles::params_by_name(n).expect("known").category == c)
            })
            .map(|(i, _)| i)
            .collect();
        // Normalize each timeout column to the paper's 1x column.
        let gm = |k: usize| {
            geomean(
                &idx.iter()
                    .map(|&i| per_run[i][k] / per_run[i][2])
                    .collect::<Vec<_>>(),
            )
        };
        let mut cells = vec![label.to_string()];
        for k in 0..timeouts.len() {
            cells.push(pct(gm(k) - 1.0).to_string());
        }
        t.row(cells);
    }
    println!("{}", t.render());
    println!("expected shape: flat near 1x; early shrinking (0.25x) loses MLP on");
    println!("memory workloads; late shrinking (4x) costs compute workloads ILP");
}
