//! **Table 1** — configuration of the base processor, dumped from the
//! live `CoreConfig` so the printout can never drift from the simulator.
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin table1
//! ```

use mlpwin_ooo::CoreConfig;
use mlpwin_sim::report::TextTable;

fn main() {
    let c = CoreConfig::default();
    let m = &c.memory;
    println!("Table 1: configuration of the base processor\n");
    let mut t = TextTable::new(vec!["parameter", "value"]);
    t.row(vec![
        "pipeline width".to_string(),
        format!("{}-wide fetch/decode/issue/commit", c.fetch_width),
    ]);
    t.row(vec!["ROB".into(), format!("{} entries", c.levels[0].rob)]);
    t.row(vec![
        "issue queue".into(),
        format!("{} entries", c.levels[0].iq),
    ]);
    t.row(vec!["LSQ".into(), format!("{} entries", c.levels[0].lsq)]);
    t.row(vec![
        "branch prediction".into(),
        format!(
            "{}-bit history {}K-entry PHT gshare, {}-set {}-way BTB, {}-cycle penalty",
            c.predictor.gshare.history_bits,
            c.predictor.gshare.pht_entries / 1024,
            c.predictor.btb.sets,
            c.predictor.btb.ways,
            c.mispredict_penalty
        ),
    ]);
    t.row(vec![
        "function units".into(),
        format!(
            "{} iALU, {} iMULT/DIV, {} Ld/St, {} fpALU, {} fpMULT/DIV/SQRT",
            c.fu_counts[0], c.fu_counts[1], c.fu_counts[2], c.fu_counts[3], c.fu_counts[4]
        ),
    ]);
    t.row(vec![
        "L1 I-cache".into(),
        format!(
            "{}KB, {}-way, {}B line",
            m.l1i.size_bytes / 1024,
            m.l1i.assoc,
            m.l1i.line_bytes
        ),
    ]);
    t.row(vec![
        "L1 D-cache".into(),
        format!(
            "{}KB, {}-way, {}B line, 2 ports, {}-cycle hit, non-blocking",
            m.l1d.size_bytes / 1024,
            m.l1d.assoc,
            m.l1d.line_bytes,
            m.l1d.hit_latency
        ),
    ]);
    t.row(vec![
        "L2 cache".into(),
        format!(
            "{}MB, {}-way, {}B line, {}-cycle hit",
            m.l2.size_bytes / 1024 / 1024,
            m.l2.assoc,
            m.l2.line_bytes,
            m.l2.hit_latency
        ),
    ]);
    t.row(vec![
        "main memory".into(),
        format!(
            "{}-cycle min latency, {}B/cycle bandwidth",
            m.dram.min_latency, m.dram.bytes_per_cycle
        ),
    ]);
    t.row(vec![
        "data prefetcher".into(),
        format!(
            "stride-based, {}-entry {}-way table, {}-line prefetch to L2 on miss",
            m.prefetch.entries, m.prefetch.ways, m.prefetch.degree
        ),
    ]);
    println!("{}", t.render());
}
