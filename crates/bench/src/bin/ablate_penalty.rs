//! **Ablation: level-transition penalty** (paper §4/§5.1 claim).
//!
//! The paper asserts the 10-cycle transition penalty barely matters:
//! raising it to 30 cycles costs only ~1.3% performance. This sweep
//! measures GM-all IPC of the dynamic model at penalties 0–50.
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin ablate_penalty
//! ```

use mlpwin_bench::ExpArgs;
use mlpwin_core::WindowModel;
use mlpwin_ooo::{Core, CoreConfig};
use mlpwin_sim::report::{geomean, pct, TextTable};
use mlpwin_workloads::profiles;

fn gm_ipc(penalty: u32, warmup: u64, insts: u64, seed: u64, threads: usize) -> f64 {
    let names = profiles::names();
    let mut ratios = vec![0.0f64; names.len()];
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<f64>> = (0..names.len())
        .map(|_| std::sync::Mutex::new(0.0))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(names.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= names.len() {
                    break;
                }
                let base_cfg = CoreConfig {
                    transition_penalty: penalty,
                    ..CoreConfig::default()
                };
                let (config, policy) = WindowModel::Dynamic.build(base_cfg);
                let w = profiles::by_name(names[i], seed).expect("profile");
                let mut core = Core::new(config, w, policy);
                core.run_warmup(warmup).expect("warm-up must not stall");
                let s = core.run(insts).expect("healthy run");
                *slots[i].lock().expect("slot") = s.ipc();
            });
        }
    });
    for (i, s) in slots.into_iter().enumerate() {
        ratios[i] = s.into_inner().expect("slot");
    }
    geomean(&ratios)
}

fn main() {
    let args = ExpArgs::parse(150_000, 40_000);
    println!("Ablation: dynamic-resizing GM-all IPC vs level-transition penalty\n");
    let penalties = [0u32, 10, 20, 30, 50];
    let mut gms = Vec::new();
    for &p in &penalties {
        gms.push(gm_ipc(p, args.warmup, args.insts, args.seed, args.threads));
    }
    let reference = gms[1]; // 10 cycles = the paper's configuration
    let mut t = TextTable::new(vec!["penalty (cycles)", "GM-all IPC", "vs 10-cycle config"]);
    for (&p, &g) in penalties.iter().zip(&gms) {
        t.row(vec![
            format!("{p}"),
            format!("{g:.4}"),
            pct(g / reference - 1.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper claim: even a 30-cycle penalty costs only ~1.3% (measured here: {})",
        pct(1.0 - gms[3] / reference)
    );
}
