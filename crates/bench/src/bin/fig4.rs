//! **Figure 4** — histogram of L2 cache-miss occurrences over miss
//! intervals (soplex, 8-cycle bins) on the base processor.
//!
//! The paper's shape: the vast majority of misses arrive within a short
//! interval of the previous one (clustering), with a secondary peak near
//! the 300-cycle memory latency — the window fills after a miss, stalls
//! for the round trip, and the next miss cluster begins when it resolves.
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin fig4
//! ```

use mlpwin_bench::ExpArgs;
use mlpwin_sim::report::{histogram, intervals, TextTable};
use mlpwin_sim::runner::{run, RunSpec};
use mlpwin_sim::SimModel;

fn main() {
    let args = ExpArgs::parse(250_000, 120_000);
    let r = mlpwin_bench::expect_run(run(
        &RunSpec::new("soplex", SimModel::Base).with_budget(args.warmup, args.insts)
    ));
    let ivals = intervals(&r.l2_miss_cycles);
    println!(
        "Figure 4: histogram of L2 miss intervals, soplex (bin = 8 cycles)\n\
         misses: {}   mean interval: {:.0} cycles\n",
        r.l2_miss_cycles.len(),
        ivals.iter().sum::<u64>() as f64 / ivals.len().max(1) as f64
    );
    let hist = histogram(&ivals, 8);
    let total: u64 = hist.iter().map(|(_, c)| c).sum();
    let mut t = TextTable::new(vec!["interval (cycles)", "misses", "share", "bar"]);
    let mut shown: u64 = 0;
    for (start, count) in hist.iter().take(50) {
        if *count == 0 && *start > 400 {
            continue;
        }
        shown += count;
        let share = *count as f64 / total as f64;
        t.row(vec![
            format!("{start}..{}", start + 8),
            format!("{count}"),
            format!("{:.1}%", share * 100.0),
            "#".repeat((share * 200.0).round() as usize),
        ]);
    }
    println!("{}", t.render());
    let tail = total - shown;
    println!("(+ {tail} misses at intervals beyond the shown range)");

    // The two paper-shape checkpoints.
    let short: u64 = hist.iter().filter(|(s, _)| *s < 64).map(|(_, c)| c).sum();
    let near_latency: u64 = hist
        .iter()
        .filter(|(s, _)| (248..=400).contains(s))
        .map(|(_, c)| c)
        .sum();
    println!(
        "\nshort intervals (<64 cycles): {:.0}% of misses — the clustering the\n\
         controller's enlarge-on-miss prediction exploits",
        short as f64 / total as f64 * 100.0
    );
    println!(
        "intervals near the 300-cycle memory latency: {:.1}% — the paper's\n\
         secondary peak (window fills, stalls one round trip, next cluster)",
        near_latency as f64 / total as f64 * 100.0
    );
}
