//! **Table 4** — additional cost vs speedup of the dynamic-resizing
//! hardware: area deltas against the base core, one Sandy Bridge core
//! and the whole Sandy Bridge chip, the measured GM-all speedup, and the
//! Pollack's-law expectation for the same area.
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin table4
//! ```

use mlpwin_bench::ExpArgs;
use mlpwin_energy::AreaModel;
use mlpwin_sim::report::{geomean, pct, TextTable};
use mlpwin_sim::runner::{run_matrix, RunSpec};
use mlpwin_sim::SimModel;
use mlpwin_workloads::profiles;

fn main() {
    let args = ExpArgs::parse(250_000, 60_000);
    // Measure the GM-all speedup of the dynamic model over the base.
    let names = profiles::names();
    let mut specs = Vec::new();
    for p in &names {
        specs.push(RunSpec::new(p, SimModel::Base).with_budget(args.warmup, args.insts));
        specs.push(RunSpec::new(p, SimModel::Dynamic).with_budget(args.warmup, args.insts));
    }
    let results = mlpwin_bench::expect_results(run_matrix(&specs, args.threads));
    let ratios: Vec<f64> = names
        .iter()
        .map(|p| {
            let b = results
                .iter()
                .find(|r| r.spec.profile == *p && r.spec.model == SimModel::Base)
                .expect("ran")
                .ipc();
            let d = results
                .iter()
                .find(|r| r.spec.profile == *p && r.spec.model == SimModel::Dynamic)
                .expect("ran")
                .ipc();
            d / b
        })
        .collect();
    let speedup = geomean(&ratios) - 1.0;

    let area = AreaModel::new();
    let report = area.cost_report(speedup);
    println!("Table 4: additional cost vs speedup\n");
    let mut t = TextTable::new(vec!["quantity", "measured", "paper"]);
    t.row(vec![
        "additional area".to_string(),
        format!("{:.2} mm2", report.added_mm2),
        "1.6 mm2".to_string(),
    ]);
    t.row(vec![
        "vs base core".to_string(),
        pct(report.vs_base_core),
        "+6%".to_string(),
    ]);
    t.row(vec![
        "vs Sandy Bridge core".to_string(),
        pct(report.vs_sb_core),
        "+8%".to_string(),
    ]);
    t.row(vec![
        "vs Sandy Bridge chip (x4 cores)".to_string(),
        pct(report.vs_sb_chip),
        "+3%".to_string(),
    ]);
    t.row(vec![
        "achieved speedup (GM all)".to_string(),
        pct(report.measured_speedup),
        "+21%".to_string(),
    ]);
    t.row(vec![
        "Pollack's-law expectation".to_string(),
        pct(report.pollack_speedup),
        "+3%".to_string(),
    ]);
    let l2_extra =
        area.l2_area_mm2(2 * 1024 * 1024 + 512 * 1024) - area.l2_area_mm2(2 * 1024 * 1024);
    t.row(vec![
        "augmented-L2 alternative area".to_string(),
        format!(
            "{:.2} mm2 (~{:.1}x window delta)",
            l2_extra,
            l2_extra / report.added_mm2
        ),
        "~1.3x, +1% IPC".to_string(),
    ]);
    println!("{}", t.render());
    println!(
        "cost/performance: {:.1}x beyond the Pollack's-law return for the same area",
        report.measured_speedup / report.pollack_speedup
    );
}
