//! **Table 3** — benchmark programs and their average load latency.
//!
//! Runs every profile on the base processor and reports the measured
//! average committed-load latency and the derived memory-/compute-
//! intensive category (threshold: 10 cycles, as in the paper), next to
//! the paper's published value.
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin table3
//! ```

use mlpwin_bench::ExpArgs;
use mlpwin_sim::report::TextTable;
use mlpwin_sim::runner::{run_matrix, RunSpec};
use mlpwin_sim::SimModel;
use mlpwin_workloads::{profiles, Category};

/// The paper's Table 3 average load latencies, for side-by-side display.
const PAPER_LATENCY: &[(&str, f64)] = &[
    ("hmmer", 15.0),
    ("libquantum", 247.0),
    ("mcf", 52.0),
    ("omnetpp", 42.0),
    ("xalancbmk", 74.0),
    ("GemsFDTD", 32.0),
    ("lbm", 14.0),
    ("leslie3d", 72.0),
    ("milc", 12.0),
    ("soplex", 36.0),
    ("sphinx3", 51.0),
    ("astar", 7.0),
    ("bzip2", 3.0),
    ("gcc", 6.0),
    ("gobmk", 3.0),
    ("h264ref", 3.0),
    ("perlbench", 4.0),
    ("sjeng", 2.0),
    ("bwaves", 2.0),
    ("cactusADM", 5.0),
    ("calculix", 6.0),
    ("dealII", 2.0),
    ("gamess", 2.0),
    ("gromacs", 5.0),
    ("namd", 3.0),
    ("povray", 2.0),
    ("tonto", 2.0),
    ("zeusmp", 6.0),
];

fn main() {
    let args = ExpArgs::parse(250_000, 60_000);
    let specs: Vec<RunSpec> = profiles::names()
        .iter()
        .map(|p| RunSpec::new(p, SimModel::Base).with_budget(args.warmup, args.insts))
        .collect();
    let results = mlpwin_bench::expect_results(run_matrix(&specs, args.threads));

    println!("Table 3: benchmark programs and their average load latency");
    println!("(measured on the base processor; category threshold 10 cycles)\n");
    let mut t = TextTable::new(vec![
        "program",
        "type",
        "paper lat",
        "measured lat",
        "measured category",
        "paper category",
        "match",
    ]);
    let mut matches = 0;
    for r in &results {
        let params = profiles::params_by_name(&r.spec.profile).expect("known profile");
        let paper_lat = PAPER_LATENCY
            .iter()
            .find(|(n, _)| *n == r.spec.profile)
            .map(|(_, l)| *l)
            .expect("paper latency table covers all profiles");
        let measured_cat = if r.avg_load_latency > 10.0 {
            Category::MemoryIntensive
        } else {
            Category::ComputeIntensive
        };
        let ok = measured_cat == r.category;
        matches += ok as u32;
        t.row(vec![
            r.spec.profile.clone(),
            if params.is_fp { "fp" } else { "int" }.to_string(),
            format!("{paper_lat:.0}"),
            format!("{:.1}", r.avg_load_latency),
            measured_cat.label().to_string(),
            r.category.label().to_string(),
            if ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("category agreement: {matches}/{} programs", results.len());
}
