//! **mlpwin-bench** — the host-performance regression gate.
//!
//! Runs a pinned suite (the first three memory-intensive selected
//! programs, the software-MLP kernels, and the first three
//! compute-intensive programs, each under the baseline and the
//! dynamic-resizing model, at a fixed budget), times every run, and
//! writes a schema-versioned `BENCH.json` with per-run wall-clock,
//! simulated throughput and process peak RSS. Every row also carries an
//! `event` rider: the identical spec re-run under `MLPWIN_EVENT_DRIVEN`
//! (results asserted bit-identical) with its skip fraction and wall
//! speedup. When a previous file exists it is the baseline: a matched
//! per-category throughput drop beyond
//! [`REGRESSION_THRESHOLD`](mlpwin_bench::benchfile::REGRESSION_THRESHOLD)
//! exits nonzero, so CI catches a PR that slows the hot loop.
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin mlpwin-bench
//!     --out PATH     where to write the report  (default results/BENCH.json)
//!     --baseline P   compare against P          (default: the previous --out file)
//!     --insts N      measured insts per run     (default 30000; smoke 2000)
//!     --warmup N     warm-up insts per run      (default 50000; smoke 2000)
//!     --smoke        tiny budget, schema validation only, no threshold gate
//!     --snapshot-cycles N   run through the recoverable runner with this
//!                           snapshot cadence (measures snapshot overhead)
//!     --max-drop PCT override the regression threshold (percent)
//!     --split N      also time an interval-parallel re-analysis of every
//!                    run: sampled split (stride N, N workers) against a
//!                    fresh snapshot sweep; records a speedup rider per
//!                    entry (serial wall over phase-2 wall)
//! ```
//!
//! Runs execute serially on one thread: the gate measures simulator
//! throughput, and sharing cores with sibling runs would fold scheduler
//! noise into the number it regresses on.
//!
//! SIGINT/SIGTERM stop the suite at the next run boundary (or, with
//! `--snapshot-cycles`, at the in-flight run's next snapshot point) and
//! exit with the "interrupted, resumable" code instead of writing a
//! partial report over the baseline trajectory.

use mlpwin_bench::benchfile::{
    matched_drop, peak_rss_kb, throughput_drop, BenchEntry, BenchEvent, BenchReport, BenchSplit,
    BENCH_SCHEMA, REGRESSION_THRESHOLD,
};
use mlpwin_sim::report::TextTable;
use mlpwin_sim::runner::{run, run_recoverable, RunResult, RunSpec};
use mlpwin_sim::snapshot::SnapshotPolicy;
use mlpwin_sim::split::{run_split, SplitConfig};
use mlpwin_sim::{signals, SimModel};
use mlpwin_workloads::profiles;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Instant;

struct BenchArgs {
    out: PathBuf,
    baseline: Option<PathBuf>,
    warmup: u64,
    insts: u64,
    smoke: bool,
    snapshot_cycles: Option<u64>,
    max_drop: Option<f64>,
    split: Option<u64>,
}

impl BenchArgs {
    fn parse<I: IntoIterator<Item = String>>(args: I) -> BenchArgs {
        let mut out = BenchArgs {
            out: PathBuf::from("results/BENCH.json"),
            baseline: None,
            warmup: 0,
            insts: 0,
            smoke: false,
            snapshot_cycles: None,
            max_drop: None,
            split: None,
        };
        let (mut warmup, mut insts) = (None, None);
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--smoke" => out.smoke = true,
                "--out" => out.out = PathBuf::from(value("--out")),
                "--baseline" => out.baseline = Some(PathBuf::from(value("--baseline"))),
                "--warmup" => {
                    warmup = Some(value("--warmup").parse().expect("--warmup: not a number"))
                }
                "--insts" => insts = Some(value("--insts").parse().expect("--insts: not a number")),
                "--snapshot-cycles" => {
                    out.snapshot_cycles = Some(
                        value("--snapshot-cycles")
                            .parse()
                            .expect("--snapshot-cycles: not a number"),
                    )
                }
                "--split" => {
                    out.split = Some(value("--split").parse().expect("--split: not a number"))
                }
                "--max-drop" => {
                    out.max_drop = Some(
                        value("--max-drop")
                            .parse()
                            .expect("--max-drop: not a number"),
                    )
                }
                other => panic!(
                    "unknown flag {other}; expected --smoke/--out/--baseline/--warmup/--insts/\
                     --snapshot-cycles/--max-drop/--split"
                ),
            }
        }
        let (dw, di) = if out.smoke {
            (2_000, 2_000)
        } else {
            (50_000, 30_000)
        };
        out.warmup = warmup.unwrap_or(dw);
        out.insts = insts.unwrap_or(di);
        if out.smoke && out.out == Path::new("results/BENCH.json") {
            // A smoke run must not overwrite (or gate against) the real
            // baseline trajectory.
            out.out = PathBuf::from("results/BENCH_smoke.json");
        }
        out
    }
}

/// The pinned suite: 3 memory-bound profiles, the software-MLP kernels
/// (sparse-event regime), and 3 compute-bound profiles, each under the
/// base and the dynamic-resizing model.
fn suite(warmup: u64, insts: u64) -> Vec<RunSpec> {
    let programs = profiles::SELECTED_MEM[..3]
        .iter()
        .copied()
        .chain(profiles::software_mlp_names())
        .chain(profiles::SELECTED_COMP[..3].iter().copied());
    let mut specs = Vec::new();
    for p in programs {
        for model in [SimModel::Base, SimModel::Dynamic] {
            specs.push(RunSpec::new(p, model).with_budget(warmup, insts));
        }
    }
    specs
}

/// Whether a report row names a memory-intensive profile (unknown
/// profiles — none are expected — fall on the compute side).
fn is_memory_row(e: &BenchEntry) -> bool {
    profiles::params_by_name(&e.profile)
        .map(|p| p.category == mlpwin_workloads::params::Category::MemoryIntensive)
        .unwrap_or(false)
}

/// Times the event-driven rider for one spec: the identical run with
/// the event engine folded into the wake plan. Results must be
/// bit-identical — the bench doubles as an end-to-end equivalence
/// check on every row it reports — so a divergence aborts the suite
/// rather than publishing a rider for a different simulation.
fn event_leg(spec: &RunSpec, stepped: &RunResult, stepped_wall: f64) -> BenchEvent {
    std::env::set_var("MLPWIN_EVENT_DRIVEN", "1");
    let started = Instant::now();
    let attempt = run(spec);
    let wall_secs = started.elapsed().as_secs_f64();
    std::env::remove_var("MLPWIN_EVENT_DRIVEN");
    let result = mlpwin_bench::expect_run(attempt);
    assert_eq!(
        &result,
        stepped,
        "{} [{}]: event-driven result diverged from the stepped run",
        spec.profile,
        spec.model.tag()
    );
    BenchEvent {
        wall_secs,
        skip_fraction: result.engine.skip_fraction(),
        speedup: stepped_wall / wall_secs.max(1e-9),
    }
}

/// Times the `--split N` rider for one spec: a sampled (stride `n`,
/// `n` workers) interval-parallel run against a fresh store. The
/// store is wiped first — a cached interval journal would fake the
/// phase-2 number — and the speedup is serial wall over phase 2 wall:
/// the sweep is the one-time cost a re-analysis no longer pays.
///
/// The interval length targets `2n` intervals of the serial row's
/// measured cycles (floored at 1024): every restore carries a fixed
/// megabyte-scale cost, so slicing a short run into many thin
/// intervals would measure restore overhead, not simulation.
///
/// Worker threads are capped at the host's available parallelism:
/// phase 2 is pure CPU, so threads beyond physical cores only add
/// scheduler churn to the wall clock being reported.
fn split_leg(
    spec: &RunSpec,
    n: u64,
    serial_wall_secs: f64,
    serial_cycles: u64,
    dir: &Path,
) -> BenchSplit {
    let n = n.max(1);
    let interval_cycles = (serial_cycles / (2 * n).max(1)).max(1_024);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let cfg = SplitConfig::new(interval_cycles)
        .with_workers((n as usize).min(cores))
        .with_sampling(n);
    mlpwin_sim::split::discard_store(spec, interval_cycles, dir);
    let outcome = run_split(spec, &cfg, dir).unwrap_or_else(|error| {
        eprintln!("split leg failed: {error}");
        std::process::exit(1);
    });
    let phase2 = outcome.phase2_secs.max(1e-9);
    BenchSplit {
        stride: n,
        interval_cycles,
        intervals: outcome.n_intervals,
        simulated: outcome.simulated,
        sweep_secs: outcome.sweep_secs,
        phase2_secs: outcome.phase2_secs,
        speedup: serial_wall_secs / phase2,
    }
}

fn interrupted_exit() -> ! {
    eprintln!("mlpwin-bench: interrupted; no report written — re-run to redo the suite");
    std::process::exit(signals::EXIT_INTERRUPTED);
}

fn main() {
    signals::install();
    let args = BenchArgs::parse(std::env::args().skip(1));
    let specs = suite(args.warmup, args.insts);
    let snapshots = args.snapshot_cycles.map(|cadence| {
        let dir = args
            .out
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .unwrap_or(Path::new("."))
            .join("bench-snapshots");
        SnapshotPolicy::in_dir(dir).every(cadence)
    });

    // Read the baseline before writing anything: the default baseline
    // IS the previous --out file.
    let baseline_path = args.baseline.clone().unwrap_or_else(|| args.out.clone());
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match BenchReport::parse(&text) {
            Ok(report) => Some(report),
            Err(e) => {
                eprintln!(
                    "warning: ignoring baseline {}: {e}",
                    baseline_path.display()
                );
                None
            }
        },
        Err(_) => None,
    };

    let split_dir = args
        .out
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or(Path::new("."))
        .join("bench-splits");

    let mut entries = Vec::with_capacity(specs.len());
    for spec in &specs {
        if signals::interrupted() {
            interrupted_exit();
        }
        let started = Instant::now();
        let attempt = match &snapshots {
            // Overhead measurement: time the recoverable path, snapshot
            // writes included — what the ≤5% CI gate regresses on.
            Some(policy) => {
                match catch_unwind(AssertUnwindSafe(|| run_recoverable(spec, policy))) {
                    Ok(attempt) => attempt,
                    Err(payload) => {
                        if signals::is_interrupt_payload(payload.as_ref()) {
                            interrupted_exit();
                        }
                        std::panic::resume_unwind(payload)
                    }
                }
            }
            None => run(spec),
        };
        let result = mlpwin_bench::expect_run(attempt);
        let wall_secs = started.elapsed().as_secs_f64();
        let mut entry = BenchEntry {
            profile: spec.profile.clone(),
            model: spec.model.tag(),
            warmup: spec.warmup,
            insts: spec.insts,
            wall_secs,
            sim_cycles: result.stats.cycles,
            sim_insts: result.stats.committed_insts,
            split: None,
            event: None,
        };
        if let Some(n) = args.split {
            entry.split = Some(split_leg(
                spec,
                n,
                wall_secs,
                result.stats.cycles,
                &split_dir,
            ));
        }
        entry.event = Some(event_leg(spec, &result, wall_secs));
        entries.push(entry);
    }
    let report = BenchReport {
        schema: BENCH_SCHEMA,
        peak_rss_kb: peak_rss_kb(),
        entries,
    };

    let mut t = TextTable::new(vec![
        "program", "model", "wall ms", "kcyc/s", "MIPS", "skip", "event x",
    ]);
    for e in &report.entries {
        let (skip, speedup) = e.event.as_ref().map_or_else(
            || ("-".to_string(), "-".to_string()),
            |ev| {
                (
                    format!("{:.0}%", ev.skip_fraction * 100.0),
                    format!("{:.2}", ev.speedup),
                )
            },
        );
        t.row(vec![
            e.profile.clone(),
            e.model.clone(),
            format!("{:.1}", e.wall_secs * 1e3),
            format!("{:.0}", e.kcps()),
            format!("{:.3}", e.mips()),
            skip,
            speedup,
        ]);
    }
    println!("{}", t.render());
    if args.split.is_some() {
        let mut t = TextTable::new(vec![
            "program",
            "model",
            "intervals",
            "simulated",
            "sweep ms",
            "phase2 ms",
            "speedup",
        ]);
        for e in &report.entries {
            let Some(sp) = &e.split else { continue };
            t.row(vec![
                e.profile.clone(),
                e.model.clone(),
                sp.intervals.to_string(),
                sp.simulated.to_string(),
                format!("{:.1}", sp.sweep_secs * 1e3),
                format!("{:.1}", sp.phase2_secs * 1e3),
                format!("{:.2}x", sp.speedup),
            ]);
        }
        println!("split re-analysis (serial wall vs phase 2):");
        println!("{}", t.render());
    }
    println!(
        "total: {:.2}s wall, {:.0} kcyc/s, {:.3} MIPS, peak RSS {}",
        report.total_wall_secs(),
        report.total_kcps(),
        report.total_mips(),
        report
            .peak_rss_kb
            .map_or("n/a".to_string(), |kb| format!("{kb} kB")),
    );

    // Write, then re-read what landed on disk: the file CI archives must
    // itself satisfy the schema.
    if let Some(parent) = args.out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    let mut text = report.encode();
    text.push('\n');
    std::fs::write(&args.out, text).expect("write BENCH.json");
    let written = std::fs::read_to_string(&args.out).expect("re-read BENCH.json");
    if let Err(e) = BenchReport::parse(&written) {
        eprintln!("BENCH.json failed schema validation after write: {e}");
        std::process::exit(2);
    }
    println!("wrote {}", args.out.display());

    match &baseline {
        None => println!("no baseline at {}; gate skipped", baseline_path.display()),
        Some(baseline) => match throughput_drop(baseline, &report) {
            None => println!("baseline throughput is degenerate; gate skipped"),
            Some(drop) => {
                println!(
                    "vs baseline {}: {:+.1}% throughput",
                    baseline_path.display(),
                    -drop * 100.0
                );
                let threshold = args
                    .max_drop
                    .map_or(REGRESSION_THRESHOLD, |pct| pct / 100.0);
                // The gate runs per category over rows present in both
                // reports: freshly added suite rows must neither mask a
                // regression on old rows nor be gated against nothing.
                let legs = [
                    (
                        "memory-bound",
                        matched_drop(baseline, &report, is_memory_row),
                    ),
                    (
                        "compute-bound",
                        matched_drop(baseline, &report, |e| !is_memory_row(e)),
                    ),
                ];
                let mut failed = false;
                for (name, drop) in legs {
                    let Some(drop) = drop else {
                        println!("{name} rows: no matched baseline; leg skipped");
                        continue;
                    };
                    println!("{name} rows (matched): {:+.1}% throughput", -drop * 100.0);
                    if drop > threshold {
                        eprintln!(
                            "FAIL: {name} throughput regressed {:.1}% (> {:.0}% threshold)",
                            drop * 100.0,
                            threshold * 100.0
                        );
                        failed = true;
                    }
                }
                if args.smoke {
                    println!("smoke mode: threshold gate skipped");
                } else if failed {
                    std::process::exit(1);
                }
            }
        },
    }
}
