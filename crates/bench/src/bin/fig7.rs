//! **Figure 7** — IPC normalized to the base processor: fixed-size
//! windows at levels 1–3, dynamic resizing ("Res"), and the un-pipelined
//! ideal models, for the selected programs and the geometric means over
//! all memory-intensive, all compute-intensive and all programs.
//!
//! The headline numbers to compare with the paper: GM mem ≈ +48%,
//! GM comp ≈ +4%, GM all ≈ +21% for the dynamic model, with Res matching
//! the best fixed level per program and trailing Ideal by only a few
//! percent.
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin fig7
//! ```

use mlpwin_bench::{selected_profiles, try_category_geomean, ExpArgs, GM_GROUPS};
use mlpwin_sim::report::{pct, TextTable};
use mlpwin_sim::runner::{run_matrix, RunResult, RunSpec};
use mlpwin_sim::SimModel;
use mlpwin_workloads::{profiles, Category};
use std::collections::HashMap;

/// The Fig. 7 model set, in presentation order.
fn models() -> Vec<SimModel> {
    vec![
        SimModel::Fixed(1),
        SimModel::Fixed(2),
        SimModel::Fixed(3),
        SimModel::Dynamic,
        SimModel::Ideal(1),
        SimModel::Ideal(2),
        SimModel::Ideal(3),
    ]
}

fn main() {
    let args = ExpArgs::parse(250_000, 60_000);
    let names = profiles::names();
    let mut specs = Vec::new();
    for p in &names {
        for m in models() {
            specs.push(RunSpec::new(p, m).with_budget(args.warmup, args.insts));
        }
    }
    let results = mlpwin_bench::expect_results(run_matrix(&specs, args.threads));
    let by_key: HashMap<(String, SimModel), &RunResult> = results
        .iter()
        .map(|r| ((r.spec.profile.clone(), r.spec.model), r))
        .collect();

    let ipc = |p: &str, m: SimModel| by_key[&(p.to_string(), m)].ipc();

    // Per-program normalized series (base = Fix L1).
    println!("Figure 7: IPC normalized to the base (Fix L1) processor\n");
    let mut t = TextTable::new(vec![
        "program",
        "cat",
        "Fix L1",
        "Fix L2",
        "Fix L3",
        "Res",
        "Ideal L1",
        "Ideal L2",
        "Ideal L3",
        "Res vs best-Fix",
    ]);
    let selected = selected_profiles();
    for p in &names {
        if !selected.contains(p) {
            continue;
        }
        let base = ipc(p, SimModel::Fixed(1));
        let series: Vec<f64> = models().iter().map(|m| ipc(p, *m) / base).collect();
        let best_fix = series[0].max(series[1]).max(series[2]);
        let cat = profiles::params_by_name(p).expect("known").category;
        let mut cells = vec![p.to_string(), cat.label().to_string()];
        cells.extend(series.iter().map(|v| format!("{v:.2}")));
        cells.push(format!("{:.2}", series[3] / best_fix));
        t.row(cells);
    }
    println!("{}", t.render());

    // Geometric means over the full program set.
    let mut gm = TextTable::new(vec![
        "group",
        "Fix L2",
        "Fix L3",
        "Res",
        "Ideal L3",
        "Res speedup vs base",
    ]);
    // Per-model `(category, ratio-to-base)` pairs feed the shared
    // category-filtered geomean helper.
    let ratios = |m: SimModel| -> Vec<(Category, f64)> {
        names
            .iter()
            .map(|p| {
                let cat = profiles::params_by_name(p).expect("known").category;
                (cat, ipc(p, m) / ipc(p, SimModel::Fixed(1)))
            })
            .collect()
    };
    for (label, filter) in GM_GROUPS {
        let rel = |m: SimModel| try_category_geomean(&ratios(m), filter);
        let row = rel(SimModel::Dynamic).and_then(|res| {
            gm.try_row(vec![
                label.to_string(),
                format!("{:.3}", rel(SimModel::Fixed(2))?),
                format!("{:.3}", rel(SimModel::Fixed(3))?),
                format!("{res:.3}"),
                format!("{:.3}", rel(SimModel::Ideal(3))?),
                pct(res - 1.0),
            ])
            .map(|_| ())
        });
        if let Err(e) = row {
            eprintln!("{label}: skipped ({e})");
        }
    }
    println!("{}", gm.render());
    println!("paper: GM mem +48%, GM comp +4%, GM all +21%");

    // Where the dynamic model's cycles went, per selected program.
    println!("\nCPI-stack attribution, dynamic resizing (% of each level's cycles):\n");
    mlpwin_bench::print_cpi_stacks(
        selected
            .iter()
            .map(|&p| (p, &by_key[&(p.to_string(), SimModel::Dynamic)].stats)),
    );
}
