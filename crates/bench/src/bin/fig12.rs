//! **Figure 12** — dynamic window resizing vs runahead execution, IPC
//! normalized to the base processor.
//!
//! The paper: runahead helps memory-intensive programs but trails
//! resizing by ~8% on their geometric mean (and ~1% on compute), because
//! runahead abandons computation while it prefetches; on milc (sparse,
//! unclustered misses) runahead drops *below* base — useless-runahead
//! episodes — while resizing merely gains little.
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin fig12
//! ```

use mlpwin_bench::ExpArgs;
use mlpwin_sim::report::{geomean, pct, TextTable};
use mlpwin_sim::runner::{run_matrix, RunSpec};
use mlpwin_sim::SimModel;
use mlpwin_workloads::{profiles, Category};

fn main() {
    let args = ExpArgs::parse(250_000, 60_000);
    let names = profiles::names();
    let mut specs = Vec::new();
    for p in &names {
        for m in [SimModel::Base, SimModel::Runahead, SimModel::Dynamic] {
            specs.push(RunSpec::new(p, m).with_budget(args.warmup, args.insts));
        }
    }
    let results = mlpwin_bench::expect_results(run_matrix(&specs, args.threads));
    let get = |p: &str, m: SimModel| {
        results
            .iter()
            .find(|r| r.spec.profile == p && r.spec.model == m)
            .expect("ran")
    };

    println!("Figure 12: runahead execution vs dynamic resizing (IPC vs base)\n");
    let selected: Vec<&str> = profiles::SELECTED_MEM
        .iter()
        .chain(profiles::SELECTED_COMP.iter())
        .copied()
        .collect();
    let mut t = TextTable::new(vec![
        "program",
        "cat",
        "Runahead",
        "Res",
        "RA episodes",
        "RA cycles %",
    ]);
    for p in &selected {
        let base = get(p, SimModel::Base).ipc();
        let ra = get(p, SimModel::Runahead);
        let res = get(p, SimModel::Dynamic);
        t.row(vec![
            p.to_string(),
            ra.category.label().to_string(),
            format!("{:.3}", ra.ipc() / base),
            format!("{:.3}", res.ipc() / base),
            format!("{}", ra.stats.runahead_episodes),
            format!(
                "{:.1}%",
                ra.stats.runahead_cycles as f64 / ra.stats.cycles as f64 * 100.0
            ),
        ]);
    }
    println!("{}", t.render());

    for (label, cat) in [
        ("GM mem", Some(Category::MemoryIntensive)),
        ("GM comp", Some(Category::ComputeIntensive)),
        ("GM all", None),
    ] {
        let sel: Vec<_> = names
            .iter()
            .filter(|n| {
                cat.is_none_or(|c| profiles::params_by_name(n).expect("known").category == c)
            })
            .collect();
        let gm = |m: SimModel| {
            geomean(
                &sel.iter()
                    .map(|p| get(p, m).ipc() / get(p, SimModel::Base).ipc())
                    .collect::<Vec<_>>(),
            )
        };
        let ra = gm(SimModel::Runahead);
        let res = gm(SimModel::Dynamic);
        println!(
            "{label}: Runahead {:.3} ({}) vs Res {:.3} ({}) — Res ahead by {}",
            ra,
            pct(ra - 1.0),
            res,
            pct(res - 1.0),
            pct(res / ra - 1.0)
        );
    }
    println!("\npaper: Res beats runahead by ~8% on GM mem and ~1% on GM comp;");
    println!("       milc: runahead < base (useless runahead), Res >= base");
}
