//! **Ablation: stride prefetcher × window resizing.**
//!
//! Both mechanisms attack memory latency; how much do they overlap?
//! Runs base and dynamic models with the prefetcher on and off and
//! reports GM-mem IPC for the four combinations — showing resizing's
//! gain survives (and grows) without the prefetcher, i.e. the mechanisms
//! are complementary, not redundant.
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin ablate_prefetcher
//! ```

use mlpwin_bench::ExpArgs;
use mlpwin_core::WindowModel;
use mlpwin_ooo::{Core, CoreConfig};
use mlpwin_sim::report::{geomean, pct, TextTable};
use mlpwin_workloads::{profiles, Category};

fn run_one(name: &str, model: WindowModel, prefetch: bool, args: &ExpArgs) -> f64 {
    let mut base = CoreConfig::default();
    base.memory.prefetch.enabled = prefetch;
    let (config, policy) = model.build(base);
    let w = profiles::by_name(name, args.seed).expect("profile");
    let mut core = Core::new(config, w, policy);
    core.run_warmup(args.warmup)
        .expect("warm-up must not stall");
    core.run(args.insts).expect("healthy run").ipc()
}

fn main() {
    let args = ExpArgs::parse(150_000, 40_000);
    let names: Vec<&str> = profiles::all()
        .iter()
        .filter(|p| p.category == Category::MemoryIntensive)
        .map(|p| p.name)
        .collect();

    let combos = [
        ("Base + prefetch", WindowModel::Base, true),
        ("Base, no prefetch", WindowModel::Base, false),
        ("Res + prefetch", WindowModel::Dynamic, true),
        ("Res, no prefetch", WindowModel::Dynamic, false),
    ];
    let mut ipcs: Vec<Vec<f64>> = vec![vec![0.0; combos.len()]; names.len()];
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Vec<f64>>> = (0..names.len())
        .map(|_| std::sync::Mutex::new(vec![0.0; combos.len()]))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..args.threads.min(names.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= names.len() {
                    break;
                }
                let v: Vec<f64> = combos
                    .iter()
                    .map(|(_, m, pf)| run_one(names[i], *m, *pf, &args))
                    .collect();
                *slots[i].lock().expect("slot") = v;
            });
        }
    });
    for (i, s) in slots.into_iter().enumerate() {
        ipcs[i] = s.into_inner().expect("slot");
    }

    println!("Ablation: prefetcher x window resizing (memory-intensive GM IPC,\nnormalized to base-with-prefetch)\n");
    let mut t = TextTable::new(vec!["configuration", "GM-mem IPC rel", "delta"]);
    for (k, (label, _, _)) in combos.iter().enumerate() {
        let gm = geomean(&ipcs.iter().map(|v| v[k] / v[0]).collect::<Vec<_>>());
        t.row(vec![label.to_string(), format!("{gm:.3}"), pct(gm - 1.0)]);
    }
    println!("{}", t.render());
    println!("expected shape: resizing gains with or without the prefetcher — the");
    println!("window exploits the irregular misses the stride table cannot cover");
}
