//! **Table 2** — entries and pipeline depths of the window resources at
//! each level, plus the level-transition penalty, dumped from the live
//! `LevelSpec` ladder.
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin table2
//! ```

use mlpwin_ooo::{CoreConfig, LevelSpec};
use mlpwin_sim::report::TextTable;

fn main() {
    let ladder = LevelSpec::table2();
    println!("Table 2: window resources per level\n");
    let mut t = TextTable::new(vec![
        "resource",
        "parameter",
        "level 1",
        "level 2",
        "level 3",
    ]);
    let cell = |f: &dyn Fn(&LevelSpec) -> String| -> Vec<String> { ladder.iter().map(f).collect() };
    let mut row = |name: &str, param: &str, f: &dyn Fn(&LevelSpec) -> String| {
        let vals = cell(f);
        t.row(vec![
            name.to_string(),
            param.to_string(),
            vals[0].clone(),
            vals[1].clone(),
            vals[2].clone(),
        ]);
    };
    row("IQ", "entries", &|l| l.iq.to_string());
    row("IQ", "pipeline depth", &|l| l.iq_depth.to_string());
    row("ROB", "entries", &|l| l.rob.to_string());
    row("LSQ", "entries", &|l| l.lsq.to_string());
    row("LSQ", "pipeline depth", &|l| l.iq_depth.to_string());
    row("", "extra mispredict penalty", &|l| {
        format!("+{}", l.extra_mispredict_penalty)
    });
    println!("{}", t.render());
    println!(
        "level transition penalty: {} cycles",
        CoreConfig::default().transition_penalty
    );
}
