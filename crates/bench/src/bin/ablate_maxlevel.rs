//! **Ablation: maximum resource level.**
//!
//! How much of the dynamic model's gain comes from each rung of the
//! Table 2 ladder? Caps the ladder at levels 1, 2 and 3 and reports the
//! GM speedups per category — quantifying that most of the
//! memory-intensive gain needs the full ×4 window.
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin ablate_maxlevel
//! ```

use mlpwin_bench::ExpArgs;
use mlpwin_core::DynamicResizingPolicy;
use mlpwin_ooo::{Core, CoreConfig, LevelSpec};
use mlpwin_sim::report::{geomean, pct, TextTable};
use mlpwin_workloads::{profiles, Category};

fn run_one(name: &str, max_level: usize, warmup: u64, insts: u64, seed: u64) -> f64 {
    let config = CoreConfig {
        levels: LevelSpec::table2().into_iter().take(max_level).collect(),
        ..CoreConfig::default()
    };
    let latency = config.memory.dram.min_latency;
    let w = profiles::by_name(name, seed).expect("profile");
    let mut core = Core::new(config, w, Box::new(DynamicResizingPolicy::new(latency)));
    core.run_warmup(warmup).expect("warm-up must not stall");
    core.run(insts).expect("healthy run").ipc()
}

fn main() {
    let args = ExpArgs::parse(150_000, 40_000);
    let names = profiles::names();
    println!("Ablation: dynamic resizing with the ladder capped at each level\n");

    // (profile, [ipc at max-level 1..=3])
    let mut rows: Vec<(&str, Category, [f64; 3])> = Vec::new();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<[f64; 3]>> = (0..names.len())
        .map(|_| std::sync::Mutex::new([0.0; 3]))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..args.threads.min(names.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= names.len() {
                    break;
                }
                let mut v = [0.0; 3];
                for (k, slot) in v.iter_mut().enumerate() {
                    *slot = run_one(names[i], k + 1, args.warmup, args.insts, args.seed);
                }
                *slots[i].lock().expect("slot") = v;
            });
        }
    });
    for (i, s) in slots.into_iter().enumerate() {
        let cat = profiles::params_by_name(names[i]).expect("known").category;
        rows.push((names[i], cat, s.into_inner().expect("slot")));
    }

    let mut t = TextTable::new(vec!["group", "max L1 (=base)", "max L2", "max L3 (paper)"]);
    for (label, cat) in [
        ("GM mem", Some(Category::MemoryIntensive)),
        ("GM comp", Some(Category::ComputeIntensive)),
        ("GM all", None),
    ] {
        let sel: Vec<&(&str, Category, [f64; 3])> = rows
            .iter()
            .filter(|(_, c, _)| cat.is_none_or(|x| *c == x))
            .collect();
        let gm = |k: usize| geomean(&sel.iter().map(|(_, _, v)| v[k] / v[0]).collect::<Vec<_>>());
        t.row(vec![
            label.to_string(),
            "1.000".to_string(),
            format!("{:.3} ({})", gm(1), pct(gm(1) - 1.0)),
            format!("{:.3} ({})", gm(2), pct(gm(2) - 1.0)),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape: the level-2 rung captures part of the gain; the full");
    println!("x4 window (level 3) is needed for the rest; compute GMs stay ~1.0");
}
