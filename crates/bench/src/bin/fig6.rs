//! **Figure 6** — resource-level transitions driven by L2 cache-miss
//! occurrences.
//!
//! Two views:
//!
//! 1. the controller in isolation, replaying the figure's exact scenario
//!    (three misses, the second enlarging to the maximum, then two
//!    shrinks spaced by the memory latency);
//! 2. a live excerpt from a dynamic-resizing run of soplex, logging every
//!    completed transition with its cycle and direction.
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin fig6
//! ```

use mlpwin_bench::ExpArgs;
use mlpwin_core::{DynamicResizingPolicy, WindowModel};
use mlpwin_ooo::{Core, CoreConfig, WindowPolicy};
use mlpwin_sim::report::TextTable;
use mlpwin_workloads::profiles;

fn main() {
    let args = ExpArgs::parse(100_000, 20_000);

    // Part 1: the paper's exact scenario on the bare controller.
    println!("Figure 6 (controller replay): misses at t=10, 60, 110; memory latency 300\n");
    let mut policy = DynamicResizingPolicy::new(300);
    let mut level = 0usize;
    let mut t1 = TextTable::new(vec!["cycle", "event", "level (1-based)"]);
    t1.row(vec!["0".into(), "start".into(), "1".to_string()]);
    for t in 0..1500u64 {
        let miss = matches!(t, 10 | 60 | 110);
        let target = policy.target_level(t, miss as u32, level, 2);
        if target != level {
            policy.on_transition(t, level, target);
            let ev = if target > level {
                "L2 miss -> enlarge"
            } else {
                "latency elapsed -> shrink"
            };
            level = target;
            t1.row(vec![
                format!("{t}"),
                ev.to_string(),
                format!("{}", level + 1),
            ]);
        } else if miss {
            t1.row(vec![
                format!("{t}"),
                "L2 miss (already at max)".into(),
                format!("{}", level + 1),
            ]);
        }
    }
    println!("{}", t1.render());

    // Part 2: live transitions from a real soplex run.
    println!("Figure 6 (live excerpt): dynamic resizing on soplex\n");
    let (config, policy) = WindowModel::Dynamic.build(CoreConfig::default());
    let workload = profiles::by_name("soplex", args.seed).expect("profile");
    let mut core = Core::new(config, workload, policy);
    core.run_warmup(args.warmup)
        .expect("warm-up must not stall");

    let mut t2 = TextTable::new(vec!["cycle", "transition", "level (1-based)"]);
    let mut last_level = core.current_level();
    let start_cycle = core.cycle();
    let mut logged = 0;
    while core.stats().committed_insts < args.insts && logged < 24 {
        core.step();
        let l = core.current_level();
        if l != last_level {
            t2.row(vec![
                format!("{}", core.cycle() - start_cycle),
                if l > last_level { "enlarge" } else { "shrink" }.to_string(),
                format!("{}", l + 1),
            ]);
            last_level = l;
            logged += 1;
        }
    }
    println!("{}", t2.render());
    let s = core.stats();
    println!(
        "transitions over the excerpt: {} up, {} down; residency L1/L2/L3 = {:.0}%/{:.0}%/{:.0}%",
        s.transitions_up,
        s.transitions_down,
        s.level_residency(0) * 100.0,
        s.level_residency(1) * 100.0,
        s.level_residency(2) * 100.0,
    );
}
