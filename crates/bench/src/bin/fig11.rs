//! **Figure 11** — breakdown of L2 cache lines brought in, by who
//! requested them (correct-path demand / wrong-path demand / prefetch)
//! and whether a correct-path access ever used them, for the base and
//! dynamic-resizing models. Bars are normalized to the number of lines
//! the *base* model brought in.
//!
//! The paper: wrong-path lines are few, useless lines are a small share,
//! and the resizing model's total barely exceeds the base's — deep
//! speculation does not meaningfully pollute the cache.
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin fig11
//! ```

use mlpwin_bench::ExpArgs;
use mlpwin_sim::report::TextTable;
use mlpwin_sim::runner::{run_matrix, RunSpec};
use mlpwin_sim::SimModel;
use mlpwin_workloads::profiles;

fn main() {
    let args = ExpArgs::parse(250_000, 60_000);
    let selected: Vec<&str> = profiles::SELECTED_MEM
        .iter()
        .chain(profiles::SELECTED_COMP.iter())
        .copied()
        .collect();
    let mut specs = Vec::new();
    for p in &selected {
        specs.push(RunSpec::new(p, SimModel::Base).with_budget(args.warmup, args.insts));
        specs.push(RunSpec::new(p, SimModel::Dynamic).with_budget(args.warmup, args.insts));
    }
    let results = mlpwin_bench::expect_results(run_matrix(&specs, args.threads));

    println!("Figure 11: L2 lines brought in, by provenance x usefulness");
    println!("(each pair normalized to the base model's total)\n");
    let mut t = TextTable::new(vec![
        "program",
        "model",
        "corr useful",
        "corr useless",
        "wrong useful",
        "wrong useless",
        "pf useful",
        "pf useless",
        "total",
    ]);
    for p in &selected {
        let base = results
            .iter()
            .find(|r| r.spec.profile == *p && r.spec.model == SimModel::Base)
            .expect("ran");
        let norm = base.provenance.total().max(1) as f64;
        for (label, r) in [("Base", base)].into_iter().chain(
            results
                .iter()
                .find(|r| r.spec.profile == *p && r.spec.model == SimModel::Dynamic)
                .map(|r| ("Res", r)),
        ) {
            let pv = &r.provenance;
            let f = |v: u64| format!("{:.3}", v as f64 / norm);
            t.row(vec![
                p.to_string(),
                label.to_string(),
                f(pv.corrpath_useful),
                f(pv.corrpath_useless),
                f(pv.wrongpath_useful),
                f(pv.wrongpath_useless),
                f(pv.prefetch_useful),
                f(pv.prefetch_useless),
                f(pv.total()),
            ]);
        }
    }
    println!("{}", t.render());

    // Aggregate checks of the paper's three observations.
    let agg = |model: SimModel| {
        let mut wrong = 0u64;
        let mut useless = 0u64;
        let mut total = 0u64;
        for r in results.iter().filter(|r| r.spec.model == model) {
            wrong += r.provenance.wrongpath_total();
            useless += r.provenance.useless_total();
            total += r.provenance.total();
        }
        (wrong, useless, total)
    };
    let (bw, bu, bt) = agg(SimModel::Base);
    let (rw, ru, rt) = agg(SimModel::Dynamic);
    println!(
        "aggregate base: wrong-path {:.1}%, useless {:.1}%  |  Res: wrong-path {:.1}%, useless {:.1}%",
        bw as f64 / bt as f64 * 100.0,
        bu as f64 / bt as f64 * 100.0,
        rw as f64 / rt as f64 * 100.0,
        ru as f64 / rt as f64 * 100.0,
    );
    println!("total lines, Res vs base: {:.2}x", rt as f64 / bt as f64);
    println!("\npaper: wrong-path lines few, useless share small, Res total ~= base total");
}
