//! **Figure 8** — percentage of cycles the dynamic-resizing window spent
//! at each resource level, per program.
//!
//! The paper's shape: compute-intensive programs live at level 1;
//! memory-intensive programs live mostly at level 3; omnetpp and other
//! phase-mixed programs split their time.
//!
//! ```text
//! cargo run --release -p mlpwin-bench --bin fig8
//! ```

use mlpwin_bench::{selected_profiles, ExpArgs};
use mlpwin_sim::report::TextTable;
use mlpwin_sim::runner::{run_matrix, RunSpec};
use mlpwin_sim::SimModel;

fn main() {
    let args = ExpArgs::parse(250_000, 60_000);
    let selected = selected_profiles();
    let specs: Vec<RunSpec> = selected
        .iter()
        .map(|p| RunSpec::new(p, SimModel::Dynamic).with_budget(args.warmup, args.insts))
        .collect();
    let results = mlpwin_bench::expect_results(run_matrix(&specs, args.threads));

    println!("Figure 8: % of cycles at each window level (dynamic resizing)\n");
    let mut t = TextTable::new(vec![
        "program",
        "cat",
        "level 1",
        "level 2",
        "level 3",
        "transitions",
    ]);
    for r in &results {
        let row = t.try_row(vec![
            r.spec.profile.clone(),
            r.category.label().to_string(),
            format!("{:.1}%", r.stats.level_residency(0) * 100.0),
            format!("{:.1}%", r.stats.level_residency(1) * 100.0),
            format!("{:.1}%", r.stats.level_residency(2) * 100.0),
            format!("{}", r.stats.transitions_up + r.stats.transitions_down),
        ]);
        if let Err(e) = row {
            eprintln!("{}: skipped ({e})", r.spec.profile);
        }
    }
    println!("{}", t.render());
    println!("paper shape: compute programs sit at level 1, memory programs at level 3,");
    println!("phase-mixed programs (omnetpp) split their residency");

    // Why each program sits where it does: the per-level CPI stacks.
    println!("\nCPI-stack attribution per level (% of each level's cycles):\n");
    mlpwin_bench::print_cpi_stacks(results.iter().map(|r| (r.spec.profile.as_str(), &r.stats)));
}
