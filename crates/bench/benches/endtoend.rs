//! Criterion end-to-end benchmarks: simulated instructions per second of
//! wall-clock for each processor model, on one memory-bound and one
//! compute-bound workload. Throughput here bounds how large an
//! experiment matrix (`fig7`, `fig12`, ...) is affordable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mlpwin_ooo::Core;
use mlpwin_sim::SimModel;
use mlpwin_workloads::profiles;

const INSTS: u64 = 5_000;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.throughput(Throughput::Elements(INSTS));
    group.sample_size(10);
    for profile in ["sphinx3", "gcc"] {
        for model in [SimModel::Base, SimModel::Dynamic, SimModel::Runahead] {
            group.bench_with_input(
                BenchmarkId::new(profile, model.label()),
                &(profile, model),
                |b, (profile, model)| {
                    b.iter(|| {
                        let (config, policy) = model.build();
                        let w = profiles::by_name(profile, 1).expect("profile");
                        let mut core = Core::new(config, w, policy);
                        core.run(INSTS)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(endtoend, bench_models);
criterion_main!(endtoend);
