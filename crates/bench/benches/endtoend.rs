//! End-to-end benchmarks: simulated instructions per second of
//! wall-clock for each processor model, on one memory-bound and one
//! compute-bound workload. Throughput here bounds how large an
//! experiment matrix (`fig7`, `fig12`, ...) is affordable.
//!
//! Self-contained harness (no external benchmarking crate — the build
//! must work offline): each model runs a few times and the best
//! wall-clock time is reported as instructions simulated per second.

use mlpwin_ooo::Core;
use mlpwin_sim::SimModel;
use mlpwin_workloads::profiles;
use std::time::Instant;

const INSTS: u64 = 5_000;
const SAMPLES: usize = 5;

fn main() {
    for profile in ["sphinx3", "gcc"] {
        for model in [SimModel::Base, SimModel::Dynamic, SimModel::Runahead] {
            let mut best = f64::INFINITY;
            for _ in 0..SAMPLES {
                let (config, policy) = model.build();
                let w = profiles::by_name(profile, 1).expect("profile");
                let mut core = Core::new(config, w, policy);
                let t0 = Instant::now();
                core.run(INSTS).expect("benchmark run must not stall");
                best = best.min(t0.elapsed().as_secs_f64());
            }
            println!(
                "simulate/{profile}/{:20} {:10.0} insts/s   (best of {SAMPLES})",
                model.label(),
                INSTS as f64 / best,
            );
        }
    }
}
