//! Criterion micro-benchmarks of the simulator's hot structures: the
//! cache probe path, the memory hierarchy, the branch predictor, the
//! stride prefetcher and the workload generator. These are the per-cycle
//! inner loops; their cost is what makes the 28×7 experiment matrix
//! tractable.

use criterion::{criterion_group, criterion_main, Criterion};
use mlpwin_branch::{BranchPredictor, PredictorConfig};
use mlpwin_isa::{ArchReg, Instruction, Xoshiro256StarStar};
use mlpwin_memsys::{
    AccessKind, Cache, CacheConfig, MemSystem, MemSystemConfig, PathKind, StrideConfig,
    StridePrefetcher,
};
use mlpwin_workloads::{profiles, Workload};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let mut cache = Cache::new(CacheConfig::l2_default());
    let mut rng = Xoshiro256StarStar::seed_from(1);
    c.bench_function("cache_probe_l2", |b| {
        b.iter(|| {
            let addr = rng.range(1 << 24) * 8;
            black_box(cache.access(black_box(addr), false, true))
        })
    });
}

fn bench_memsys(c: &mut Criterion) {
    let mut mem = MemSystem::new(MemSystemConfig {
        record_miss_cycles: false,
        ..MemSystemConfig::default()
    });
    let mut rng = Xoshiro256StarStar::seed_from(2);
    let mut now = 0u64;
    c.bench_function("memsys_load_access", |b| {
        b.iter(|| {
            now += 3;
            let addr = rng.range(1 << 26) * 8;
            black_box(mem.access(AccessKind::Load, 0x400, addr, now, PathKind::Correct))
        })
    });
}

fn bench_predictor(c: &mut Criterion) {
    let mut bp = BranchPredictor::new(PredictorConfig::default());
    let mut rng = Xoshiro256StarStar::seed_from(3);
    c.bench_function("gshare_predict_resolve", |b| {
        b.iter(|| {
            let pc = 0x400 + rng.range(256) * 4;
            let br = Instruction::cond_branch(pc, ArchReg::int(1), rng.chance(0.7), 0x9000);
            let o = bp.predict(&br);
            bp.resolve(&br, &o);
            black_box(o.mispredicted)
        })
    });
}

fn bench_prefetcher(c: &mut Criterion) {
    let mut pf = StridePrefetcher::new(StrideConfig::default());
    let mut addr = 0u64;
    c.bench_function("stride_prefetcher_train", |b| {
        b.iter(|| {
            addr += 64;
            black_box(pf.train(0x500, addr, true))
        })
    });
}

fn bench_workload_gen(c: &mut Criterion) {
    let mut w = profiles::by_name("mcf", 1).expect("profile");
    c.bench_function("workload_next_inst", |b| {
        b.iter(|| black_box(w.next_inst()))
    });
}

criterion_group!(
    name = structures;
    config = Criterion::default().sample_size(30);
    targets = bench_cache, bench_memsys, bench_predictor, bench_prefetcher, bench_workload_gen
);
criterion_main!(structures);
