//! Micro-benchmarks of the simulator's hot structures: the cache probe
//! path, the memory hierarchy, the branch predictor, the stride
//! prefetcher and the workload generator. These are the per-cycle inner
//! loops; their cost is what makes the 28×7 experiment matrix tractable.
//!
//! Self-contained harness (no external benchmarking crate — the build
//! must work offline): each case is timed with `std::time::Instant`
//! over a fixed iteration count after a warm-up pass.

use mlpwin_branch::{BranchPredictor, PredictorConfig};
use mlpwin_isa::{ArchReg, Instruction, Xoshiro256StarStar};
use mlpwin_memsys::{
    AccessKind, Cache, CacheConfig, MemSystem, MemSystemConfig, PathKind, StrideConfig,
    StridePrefetcher,
};
use mlpwin_workloads::{profiles, Workload};
use std::hint::black_box;
use std::time::Instant;

const WARMUP_ITERS: u64 = 50_000;
const ITERS: u64 = 500_000;

fn bench(name: &str, mut f: impl FnMut()) {
    for _ in 0..WARMUP_ITERS {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    let elapsed = t0.elapsed();
    println!(
        "{name:32} {:8.1} ns/op   ({ITERS} iters in {elapsed:?})",
        elapsed.as_nanos() as f64 / ITERS as f64,
    );
}

fn main() {
    let mut cache = Cache::new(CacheConfig::l2_default());
    let mut rng = Xoshiro256StarStar::seed_from(1);
    bench("cache_probe_l2", || {
        let addr = rng.range(1 << 24) * 8;
        black_box(cache.access(black_box(addr), false, true));
    });

    let mut mem = MemSystem::new(MemSystemConfig {
        record_miss_cycles: false,
        ..MemSystemConfig::default()
    });
    let mut rng = Xoshiro256StarStar::seed_from(2);
    let mut now = 0u64;
    bench("memsys_load_access", || {
        now += 3;
        let addr = rng.range(1 << 26) * 8;
        black_box(mem.access(AccessKind::Load, 0x400, addr, now, PathKind::Correct));
    });

    let mut bp = BranchPredictor::new(PredictorConfig::default());
    let mut rng = Xoshiro256StarStar::seed_from(3);
    bench("gshare_predict_resolve", || {
        let pc = 0x400 + rng.range(256) * 4;
        let br = Instruction::cond_branch(pc, ArchReg::int(1), rng.chance(0.7), 0x9000);
        let o = bp.predict(&br);
        bp.resolve(&br, &o);
        black_box(o.mispredicted);
    });

    let mut pf = StridePrefetcher::new(StrideConfig::default());
    let mut addr = 0u64;
    bench("stride_prefetcher_train", || {
        addr += 64;
        black_box(pf.train(0x500, addr, true));
    });

    let mut w = profiles::by_name("mcf", 1).expect("profile");
    bench("workload_next_inst", || {
        black_box(w.next_inst());
    });
}
