//! Determinism guarantees: every run is a pure function of
//! (profile, model, seed, budgets) — across repeated executions, across
//! thread counts, and across all models.

use mlpwin::sim::runner::{run, run_matrix, RunSpec};
use mlpwin::sim::SimModel;

fn spec(profile: &str, model: SimModel, seed: u64) -> RunSpec {
    let mut s = RunSpec::new(profile, model).with_budget(10_000, 5_000);
    s.seed = seed;
    s
}

#[test]
fn repeated_runs_are_bit_identical() {
    for model in [
        SimModel::Base,
        SimModel::Fixed(3),
        SimModel::Dynamic,
        SimModel::Runahead,
        SimModel::BigL2,
    ] {
        let a = run(&spec("soplex", model, 1)).expect("healthy run");
        let b = run(&spec("soplex", model, 1)).expect("healthy run");
        assert_eq!(a.stats, b.stats, "{model:?} not deterministic");
        assert_eq!(a.provenance, b.provenance);
        assert_eq!(a.l2_miss_cycles, b.l2_miss_cycles);
    }
}

#[test]
fn thread_count_cannot_change_results() {
    let specs: Vec<RunSpec> = ["gcc", "milc", "mcf", "sjeng"]
        .iter()
        .map(|p| spec(p, SimModel::Dynamic, 1))
        .collect();
    let serial = run_matrix(&specs, 1);
    let parallel = run_matrix(&specs, 4);
    for (s, p) in serial.iter().zip(&parallel) {
        let s = s.result().expect("healthy spec");
        let p = p.result().expect("healthy spec");
        assert_eq!(
            s.stats, p.stats,
            "{}: thread-count sensitivity",
            s.spec.profile
        );
    }
}

#[test]
fn interval_series_is_deterministic_across_threads_and_repeats() {
    let specs: Vec<RunSpec> = ["libquantum", "gcc", "mcf"]
        .iter()
        .map(|p| spec(p, SimModel::Dynamic, 1).with_intervals(500))
        .collect();
    let serial = run_matrix(&specs, 1);
    let parallel = run_matrix(&specs, 4);
    let again = run_matrix(&specs, 4);
    for ((s, p), a) in serial.iter().zip(&parallel).zip(&again) {
        let s = s.result().expect("healthy spec");
        let p = p.result().expect("healthy spec");
        let a = a.result().expect("healthy spec");
        assert!(
            !s.stats.intervals.is_empty(),
            "{}: series must be collected",
            s.spec.profile
        );
        // The whole CoreStats — intervals and CPI stack included — must
        // be bit-identical whatever the thread count, and across runs.
        assert_eq!(
            s.stats, p.stats,
            "{}: thread-count sensitivity in observability data",
            s.spec.profile
        );
        assert_eq!(
            p.stats, a.stats,
            "{}: repeat sensitivity in observability data",
            p.spec.profile
        );
    }
}

#[test]
fn different_seeds_diverge() {
    let a = run(&spec("soplex", SimModel::Base, 1)).expect("healthy run");
    let b = run(&spec("soplex", SimModel::Base, 2)).expect("healthy run");
    assert_ne!(
        a.stats.cycles, b.stats.cycles,
        "distinct seeds should explore distinct dynamic behaviour"
    );
    // But aggregate character stays put: same category, same regime.
    let ratio = a.ipc() / b.ipc();
    assert!(
        (0.5..2.0).contains(&ratio),
        "seed variance should be bounded: {ratio}"
    );
}

#[test]
fn warmup_reset_preserves_microarchitectural_state() {
    // Running 2k after an 8k warmup must differ from a cold 2k run
    // (warm caches), and two warm runs must agree with each other.
    let cold =
        run(&RunSpec::new("gcc", SimModel::Base).with_budget(0, 2_000)).expect("healthy run");
    let warm1 =
        run(&RunSpec::new("gcc", SimModel::Base).with_budget(8_000, 2_000)).expect("healthy run");
    let warm2 =
        run(&RunSpec::new("gcc", SimModel::Base).with_budget(8_000, 2_000)).expect("healthy run");
    assert_eq!(warm1.stats, warm2.stats);
    assert!(
        warm1.ipc() > cold.ipc(),
        "warm ({:.3}) should beat cold ({:.3})",
        warm1.ipc(),
        cold.ipc()
    );
}
