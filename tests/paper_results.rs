//! End-to-end integration tests asserting the paper's *qualitative*
//! results hold on small (debug-friendly) budgets.
//!
//! These runs are intentionally tiny compared with the bench binaries —
//! enough to pin the direction of every headline claim without slowing
//! `cargo test --workspace`. The full-budget numbers live in
//! `EXPERIMENTS.md`.

use mlpwin::sim::runner::{run, run_matrix, RunSpec};
use mlpwin::sim::SimModel;

const WARMUP: u64 = 120_000;
const INSTS: u64 = 15_000;

fn ipc(profile: &str, model: SimModel) -> f64 {
    run(&RunSpec::new(profile, model).with_budget(WARMUP, INSTS))
        .expect("healthy run")
        .ipc()
}

#[test]
fn memory_workload_prefers_large_window_and_res_tracks_it() {
    let specs: Vec<RunSpec> = [SimModel::Fixed(1), SimModel::Fixed(3), SimModel::Dynamic]
        .into_iter()
        .map(|m| RunSpec::new("sphinx3", m).with_budget(WARMUP, INSTS))
        .collect();
    let r = run_matrix(&specs, 3);
    let ipc_of = |i: usize| r[i].result().expect("healthy spec").ipc();
    let (fix1, fix3, res) = (ipc_of(0), ipc_of(1), ipc_of(2));
    assert!(
        fix3 > fix1 * 1.3,
        "sphinx3 must gain from the big window: {fix1:.3} -> {fix3:.3}"
    );
    assert!(
        res > fix3 * 0.9,
        "dynamic ({res:.3}) must track the best fixed level ({fix3:.3})"
    );
}

#[test]
fn compute_workload_prefers_small_window_and_res_tracks_it() {
    let fix1 = ipc("sjeng", SimModel::Fixed(1));
    let fix3 = ipc("sjeng", SimModel::Fixed(3));
    let res = ipc("sjeng", SimModel::Dynamic);
    assert!(
        fix3 < fix1,
        "pipelined large window must hurt sjeng: {fix1:.3} vs {fix3:.3}"
    );
    assert!(
        res > fix3,
        "dynamic ({res:.3}) must beat the pipelined large window ({fix3:.3})"
    );
    assert!(
        res > fix1 * 0.95,
        "dynamic ({res:.3}) must stay near the base ({fix1:.3})"
    );
}

#[test]
fn ideal_model_upper_bounds_the_fixed_model() {
    for profile in ["sphinx3", "gobmk"] {
        let fixed = ipc(profile, SimModel::Fixed(3));
        let ideal = ipc(profile, SimModel::Ideal(3));
        assert!(
            ideal >= fixed * 0.99,
            "{profile}: ideal ({ideal:.3}) must not lose to pipelined ({fixed:.3})"
        );
    }
}

#[test]
fn dynamic_residency_follows_the_workload_character() {
    let mem = run(&RunSpec::new("sphinx3", SimModel::Dynamic).with_budget(WARMUP, INSTS))
        .expect("healthy run");
    let comp = run(&RunSpec::new("sjeng", SimModel::Dynamic).with_budget(WARMUP, INSTS))
        .expect("healthy run");
    let mem_upper = mem.stats.level_residency(1) + mem.stats.level_residency(2);
    assert!(
        mem_upper > 0.5,
        "memory-bound run should live enlarged: {:?}",
        mem.stats.level_cycles
    );
    assert!(
        comp.stats.level_residency(0) > 0.85,
        "compute-bound run should live at level 1: {:?}",
        comp.stats.level_cycles
    );
}

#[test]
fn resizing_beats_runahead_where_computation_overlaps_misses() {
    let base = ipc("sphinx3", SimModel::Base);
    let ra = ipc("sphinx3", SimModel::Runahead);
    let res = ipc("sphinx3", SimModel::Dynamic);
    assert!(
        res > ra,
        "resizing ({res:.3}) must beat runahead ({ra:.3}) on sphinx3"
    );
    assert!(
        ra > base * 0.95,
        "runahead ({ra:.3}) must not collapse below base ({base:.3})"
    );
}

#[test]
fn enlarged_l2_buys_far_less_than_resizing() {
    let base = ipc("sphinx3", SimModel::Base);
    let big = ipc("sphinx3", SimModel::BigL2);
    let res = ipc("sphinx3", SimModel::Dynamic);
    let l2_gain = big / base - 1.0;
    let res_gain = res / base - 1.0;
    assert!(
        res_gain > l2_gain * 3.0,
        "resizing (+{:.1}%) must dwarf the enlarged L2 (+{:.1}%)",
        res_gain * 100.0,
        l2_gain * 100.0
    );
}

#[test]
fn cache_pollution_from_speculation_stays_small() {
    let r = run(&RunSpec::new("gobmk", SimModel::Dynamic).with_budget(WARMUP, INSTS))
        .expect("healthy run");
    let p = &r.provenance;
    assert!(p.total() > 0, "some lines must have been brought in");
    let wrong_share = p.wrongpath_total() as f64 / p.total() as f64;
    assert!(
        wrong_share < 0.35,
        "wrong-path lines should be a minority: {:.1}%",
        wrong_share * 100.0
    );
}

#[test]
fn transition_penalty_is_not_the_bottleneck() {
    // The paper: 30-cycle transitions cost ~1.3%. On a small budget we
    // assert the direction: tripling the penalty costs < 10%.
    use mlpwin::core::WindowModel;
    use mlpwin::ooo::{Core, CoreConfig};
    use mlpwin::workloads::profiles;
    let mut ipcs = Vec::new();
    for penalty in [10u32, 30] {
        let base = CoreConfig {
            transition_penalty: penalty,
            ..CoreConfig::default()
        };
        let (config, policy) = WindowModel::Dynamic.build(base);
        let w = profiles::by_name("soplex", 1).expect("profile");
        let mut cpu = Core::new(config, w, policy);
        cpu.run_warmup(WARMUP).expect("warm-up must not stall");
        ipcs.push(cpu.run(INSTS).expect("healthy run").ipc());
    }
    let loss = 1.0 - ipcs[1] / ipcs[0];
    assert!(
        loss < 0.10,
        "30-cycle transitions should cost little, lost {:.1}%",
        loss * 100.0
    );
}

#[test]
fn milc_is_hostile_to_runahead_but_safe_for_resizing() {
    let base = ipc("milc", SimModel::Base);
    let res = ipc("milc", SimModel::Dynamic);
    // Resizing must never lose meaningfully on the sparse-miss program.
    assert!(
        res > base * 0.97,
        "resizing must be safe on milc: {base:.3} -> {res:.3}"
    );
    // And the CST must be suppressing episodes (the workload's character).
    let ra = run(&RunSpec::new("milc", SimModel::Runahead).with_budget(WARMUP, INSTS))
        .expect("healthy run");
    assert!(
        ra.stats.runahead_suppressed + ra.stats.runahead_short_skips > 0,
        "milc should trip the useless-runahead defenses"
    );
}
