//! Property-based tests of cross-crate invariants.

use mlpwin::branch::{BranchPredictor, PredictorConfig};
use mlpwin::core::DynamicResizingPolicy;
use mlpwin::isa::{Instruction, Xoshiro256StarStar};
use mlpwin::memsys::{AccessKind, Cache, CacheConfig, MemSystem, MemSystemConfig, PathKind};
use mlpwin::ooo::WindowPolicy;
use mlpwin::workloads::{
    MemPattern, PhaseParams, ProfileParams, ProfileWorkload, TraceWindow, Workload,
};
use proptest::prelude::*;

/// Arbitrary-but-valid phase parameters.
fn phase_strategy() -> impl Strategy<Value = PhaseParams> {
    (
        16usize..256,          // body_len
        0.05f64..0.35,         // load_frac
        0.0f64..0.15,          // store_frac
        0.0f64..0.20,          // branch_frac
        0.5f64..1.0,           // branch_bias
        0.0f64..0.8,           // fp_frac
        1usize..16,            // dep_depth
        0.0f64..0.6,           // chase_frac
        0u8..4,                // pattern selector
    )
        .prop_map(
            |(body, load, store, branch, bias, fp, dep, chase, pat)| PhaseParams {
                len: 10_000,
                body_len: body,
                load_frac: load,
                store_frac: store,
                branch_frac: branch,
                branch_bias: bias,
                fp_frac: fp,
                longlat_frac: 0.1,
                dep_depth: dep,
                chase_frac: chase,
                working_set: 1 << 20,
                pattern: match pat {
                    0 => MemPattern::Stream { stride: 8 },
                    1 => MemPattern::Random,
                    2 => MemPattern::BurstyRandom {
                        burst: 16,
                        region: 4096,
                    },
                    _ => MemPattern::RandomChunk {
                        run: 6,
                        reuse: 0.5,
                    },
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated stream is PC-consistent and structurally valid,
    /// for arbitrary valid phase parameters.
    #[test]
    fn generated_streams_are_always_pc_consistent(phase in phase_strategy(), seed in 0u64..1000) {
        let params = ProfileParams {
            name: "prop",
            category: mlpwin::workloads::Category::ComputeIntensive,
            is_fp: false,
            phases: vec![phase],
        };
        let mut w = ProfileWorkload::new(params, seed).expect("valid params");
        let mut prev: Option<Instruction> = None;
        for _ in 0..3_000 {
            let inst = w.next_inst();
            inst.validate().expect("structurally valid");
            if let Some(p) = prev {
                prop_assert_eq!(p.successor_pc(), inst.pc);
            }
            prev = Some(inst);
        }
    }

    /// Rewinding a trace window replays the identical instructions.
    #[test]
    fn trace_window_rewind_is_exact(seed in 0u64..500, ahead in 1u64..3000) {
        let w = mlpwin::workloads::profiles::by_name("gcc", seed).expect("profile");
        let mut win = TraceWindow::new(w);
        let first: Vec<Instruction> = (0..100).map(|s| win.get(s).clone()).collect();
        let _ = win.get(100 + ahead); // run ahead
        for (s, expect) in first.iter().enumerate() {
            prop_assert_eq!(win.get(s as u64), expect);
        }
    }

    /// Cache fills never exceed capacity and LRU keeps the most recent
    /// line of any filled set resident.
    #[test]
    fn cache_capacity_and_recency(addrs in proptest::collection::vec(0u64..(1 << 16), 1..300)) {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 4096,
            assoc: 2,
            line_bytes: 64,
            hit_latency: 1,
        });
        let meta = mlpwin::memsys::cache::LineMeta {
            provenance: mlpwin::memsys::Provenance::DemandCorrect,
            touched_by_correct_path: false,
        };
        for &a in &addrs {
            c.fill(a, meta);
            prop_assert!(c.resident_count() <= 64, "capacity exceeded");
            prop_assert!(c.contains(a), "just-filled line must be resident");
        }
    }

    /// The memory system never returns a completion earlier than its own
    /// hit latency, and monotone `now` keeps results causal.
    #[test]
    fn memsys_results_are_causal(
        addrs in proptest::collection::vec(0u64..(1 << 30), 1..200),
        stride in 1u64..64,
    ) {
        let mut m = MemSystem::new(MemSystemConfig::default());
        let mut now = 0;
        for (i, &a) in addrs.iter().enumerate() {
            now += stride;
            let r = m.access(AccessKind::Load, 0x1000 + (i as u64 % 16) * 4, a * 8, now, PathKind::Correct);
            prop_assert!(r.ready_at >= now + 2, "faster than the L1 hit latency");
            prop_assert!(r.ready_at <= now + 100_000, "implausibly slow");
        }
    }

    /// The Fig. 5 controller's level stays within bounds and shrinks are
    /// armed only after a full memory latency without misses.
    #[test]
    fn controller_level_always_in_range(misses in proptest::collection::vec(any::<bool>(), 1..2000)) {
        let mut p = DynamicResizingPolicy::new(300);
        let mut level = 0usize;
        let mut last_miss: Option<u64> = None;
        for (t, &miss) in misses.iter().enumerate() {
            let t = t as u64;
            let target = p.target_level(t, miss as u32, level, 2);
            prop_assert!(target <= 2);
            if target != level {
                if target < level {
                    // A shrink request requires >= one memory latency of
                    // miss-free cycles since the last miss (or start).
                    if let Some(lm) = last_miss {
                        prop_assert!(t >= lm + 300, "shrink at {t} after miss at {lm}");
                    }
                }
                p.on_transition(t, level, target);
                level = target;
            }
            if miss {
                last_miss = Some(t);
                prop_assert!(level > 0 || target > 0, "miss must enlarge below max");
            }
        }
    }

    /// The branch predictor is self-consistent on arbitrary outcome
    /// sequences: speculative history repair never panics and stats add up.
    #[test]
    fn predictor_handles_arbitrary_outcomes(outcomes in proptest::collection::vec(any::<bool>(), 1..500)) {
        let mut bp = BranchPredictor::new(PredictorConfig::default());
        let mut rng = Xoshiro256StarStar::seed_from(9);
        for &taken in &outcomes {
            let pc = 0x400 + (rng.range(64)) * 4;
            let br = Instruction::cond_branch(pc, mlpwin::isa::ArchReg::int(1), taken, 0x9000);
            let o = bp.predict(&br);
            bp.resolve(&br, &o);
        }
        let s = bp.stats();
        prop_assert_eq!(s.conditional_branches, outcomes.len() as u64);
        prop_assert!(s.direction_mispredicts <= s.conditional_branches);
    }
}
