//! Randomized (property-style) tests of cross-crate invariants.
//!
//! Implemented over the workspace's own deterministic
//! [`Xoshiro256StarStar`] generator instead of an external
//! property-testing crate, so the suite builds offline. Each test sweeps
//! a fixed number of seeded random cases; failures print the case seed
//! so a reproduction is one constant away.

use mlpwin::branch::{BranchPredictor, PredictorConfig};
use mlpwin::core::DynamicResizingPolicy;
use mlpwin::isa::{Instruction, Xoshiro256StarStar};
use mlpwin::memsys::{AccessKind, Cache, CacheConfig, MemSystem, MemSystemConfig, PathKind};
use mlpwin::ooo::WindowPolicy;
use mlpwin::workloads::{
    MemPattern, PhaseParams, ProfileParams, ProfileWorkload, TraceWindow, Workload,
};

/// Arbitrary-but-valid phase parameters drawn from `rng`.
fn random_phase(rng: &mut Xoshiro256StarStar) -> PhaseParams {
    let unit = |rng: &mut Xoshiro256StarStar, lo: f64, hi: f64| lo + rng.unit_f64() * (hi - lo);
    PhaseParams {
        len: 10_000,
        body_len: rng.range_between(16, 256) as usize,
        load_frac: unit(rng, 0.05, 0.35),
        store_frac: unit(rng, 0.0, 0.15),
        branch_frac: unit(rng, 0.0, 0.20),
        branch_bias: unit(rng, 0.5, 1.0),
        fp_frac: unit(rng, 0.0, 0.8),
        longlat_frac: 0.1,
        dep_depth: rng.range_between(1, 16) as usize,
        chase_frac: unit(rng, 0.0, 0.6),
        working_set: 1 << 20,
        pattern: match rng.range(4) {
            0 => MemPattern::Stream { stride: 8 },
            1 => MemPattern::Random,
            2 => MemPattern::BurstyRandom {
                burst: 16,
                region: 4096,
            },
            _ => MemPattern::RandomChunk { run: 6, reuse: 0.5 },
        },
    }
}

/// Every generated stream is PC-consistent and structurally valid, for
/// arbitrary valid phase parameters.
#[test]
fn generated_streams_are_always_pc_consistent() {
    for case in 0..24u64 {
        let mut rng = Xoshiro256StarStar::seed_from(0xA11CE + case);
        let phase = random_phase(&mut rng);
        let seed = rng.range(1000);
        let params = ProfileParams {
            name: "prop",
            category: mlpwin::workloads::Category::ComputeIntensive,
            is_fp: false,
            phases: vec![phase],
        };
        let mut w = ProfileWorkload::new(params, seed).expect("valid params");
        let mut prev: Option<Instruction> = None;
        for _ in 0..3_000 {
            let inst = w.next_inst();
            inst.validate().expect("structurally valid");
            if let Some(p) = prev {
                assert_eq!(p.successor_pc(), inst.pc, "case {case}: pc chain broken");
            }
            prev = Some(inst);
        }
    }
}

/// Rewinding a trace window replays the identical instructions.
#[test]
fn trace_window_rewind_is_exact() {
    for case in 0..24u64 {
        let mut rng = Xoshiro256StarStar::seed_from(0xB0B + case);
        let seed = rng.range(500);
        let ahead = rng.range_between(1, 3000);
        let w = mlpwin::workloads::profiles::by_name("gcc", seed).expect("profile");
        let mut win = TraceWindow::new(w);
        let first: Vec<Instruction> = (0..100).map(|s| win.get(s).clone()).collect();
        let _ = win.get(100 + ahead); // run ahead
        for (s, expect) in first.iter().enumerate() {
            assert_eq!(win.get(s as u64), expect, "case {case}: rewind diverged");
        }
    }
}

/// Cache fills never exceed capacity and LRU keeps the most recent line
/// of any filled set resident.
#[test]
fn cache_capacity_and_recency() {
    for case in 0..24u64 {
        let mut rng = Xoshiro256StarStar::seed_from(0xCAFE + case);
        let mut c = Cache::new(CacheConfig {
            size_bytes: 4096,
            assoc: 2,
            line_bytes: 64,
            hit_latency: 1,
        });
        let meta = mlpwin::memsys::cache::LineMeta {
            provenance: mlpwin::memsys::Provenance::DemandCorrect,
            touched_by_correct_path: false,
        };
        let n = rng.range_between(1, 300);
        for _ in 0..n {
            let a = rng.range(1 << 16);
            c.fill(a, meta);
            assert!(c.resident_count() <= 64, "case {case}: capacity exceeded");
            assert!(
                c.contains(a),
                "case {case}: just-filled line must be resident"
            );
        }
    }
}

/// The memory system never returns a completion earlier than its own hit
/// latency, and monotone `now` keeps results causal.
#[test]
fn memsys_results_are_causal() {
    for case in 0..24u64 {
        let mut rng = Xoshiro256StarStar::seed_from(0xD00D + case);
        let mut m = MemSystem::new(MemSystemConfig::default());
        let stride = rng.range_between(1, 64);
        let n = rng.range_between(1, 200);
        let mut now = 0;
        for i in 0..n {
            now += stride;
            let a = rng.range(1 << 30);
            let r = m.access(
                AccessKind::Load,
                0x1000 + (i % 16) * 4,
                a * 8,
                now,
                PathKind::Correct,
            );
            assert!(r.ready_at >= now + 2, "case {case}: faster than the L1 hit");
            assert!(r.ready_at <= now + 100_000, "case {case}: implausibly slow");
        }
    }
}

/// The Fig. 5 controller's level stays within bounds and shrinks are
/// armed only after a full memory latency without misses.
#[test]
fn controller_level_always_in_range() {
    for case in 0..24u64 {
        let mut rng = Xoshiro256StarStar::seed_from(0xE66 + case);
        let mut p = DynamicResizingPolicy::new(300);
        let mut level = 0usize;
        let mut last_miss: Option<u64> = None;
        let n = rng.range_between(1, 2000);
        for t in 0..n {
            let miss = rng.chance(0.5);
            let target = p.target_level(t, miss as u32, level, 2);
            assert!(target <= 2, "case {case}");
            if target != level {
                if target < level {
                    // A shrink request requires >= one memory latency of
                    // miss-free cycles since the last miss (or start).
                    if let Some(lm) = last_miss {
                        assert!(
                            t >= lm + 300,
                            "case {case}: shrink at {t} after miss at {lm}"
                        );
                    }
                }
                p.on_transition(t, level, target);
                level = target;
            }
            if miss {
                last_miss = Some(t);
                assert!(
                    level > 0 || target > 0,
                    "case {case}: miss must enlarge below max"
                );
            }
        }
    }
}

/// The tracer ring buffer honours its bounds for arbitrary event
/// streams: length never exceeds capacity, buffered events stay in
/// cycle order, and the drop counter accounts for every overflow
/// (`recorded = len + dropped`).
#[test]
fn tracer_ring_buffer_bounds_and_accounting() {
    use mlpwin::ooo::{TraceConfig, TraceEventKind, Tracer};
    for case in 0..24u64 {
        let mut rng = Xoshiro256StarStar::seed_from(0x7ACE + case);
        let capacity = rng.range_between(1, 64) as usize;
        let mut t = Tracer::new(TraceConfig {
            capacity,
            llc_sample: 1,
        });
        let n = rng.range_between(0, 300);
        let mut cycle = 0u64;
        for i in 0..n {
            cycle += rng.range(5); // non-decreasing, repeats allowed
            t.record(cycle, TraceEventKind::Squash { at_seq: i });
            assert!(t.len() <= capacity, "case {case}: ring overflowed");
            assert_eq!(
                t.recorded(),
                t.len() as u64 + t.dropped(),
                "case {case}: drop accounting broken"
            );
        }
        assert_eq!(t.recorded(), n, "case {case}: every record counted");
        assert_eq!(t.dropped(), n.saturating_sub(capacity as u64));
        let cycles: Vec<u64> = t.events().map(|e| e.cycle).collect();
        assert!(
            cycles.windows(2).all(|w| w[0] <= w[1]),
            "case {case}: buffered events out of order"
        );
    }
}

/// LLC-miss sampling records exactly `ceil(n / k)` of `n` offered
/// misses for any divisor `k`, while counting every observation.
#[test]
fn tracer_sampling_records_every_kth_miss() {
    use mlpwin::ooo::{TraceConfig, Tracer};
    for case in 0..24u64 {
        let mut rng = Xoshiro256StarStar::seed_from(0x5A17 + case);
        let k = rng.range_between(1, 32);
        let n = rng.range_between(0, 500);
        let mut t = Tracer::new(TraceConfig {
            capacity: 1 << 16, // never overflows in this sweep
            llc_sample: k,
        });
        for i in 0..n {
            t.offer_llc_miss(i, 0x400, i * 64, 0);
        }
        assert_eq!(t.llc_misses_seen(), n, "case {case}");
        assert_eq!(t.recorded(), n.div_ceil(k), "case {case}: k={k} n={n}");
        assert_eq!(t.dropped(), 0, "case {case}: nothing overflowed");
    }
}

/// Interval samples land exactly on epoch boundaries of the measured
/// clock, with occupancies bounded by the provisioned window and
/// per-epoch commits bounded by the machine's commit bandwidth.
#[test]
fn interval_samples_respect_epoch_boundaries_and_bounds() {
    use mlpwin::sim::runner::{run, RunSpec};
    use mlpwin::sim::SimModel;
    let profiles = ["libquantum", "gcc", "omnetpp"];
    for case in 0..6u64 {
        let mut rng = Xoshiro256StarStar::seed_from(0xE90C + case);
        let epoch = rng.range_between(100, 2_000);
        let profile = profiles[rng.range(profiles.len() as u64) as usize];
        let spec = RunSpec::new(profile, SimModel::Dynamic)
            .with_budget(3_000, 3_000)
            .with_intervals(epoch);
        let r = run(&spec).expect("healthy run");
        let max_rob = 512; // the dynamic ladder's largest level
        let commit_width = 4;
        for (i, sample) in r.stats.intervals.iter().enumerate() {
            assert_eq!(
                sample.end_cycle,
                (i as u64 + 1) * epoch,
                "case {case}: sample off the epoch grid (epoch {epoch})"
            );
            assert!(sample.rob_occ <= max_rob, "case {case}");
            assert!(sample.level < 3, "case {case}: level out of ladder");
            assert!(
                sample.committed_insts <= epoch * commit_width,
                "case {case}: more commits than bandwidth allows"
            );
        }
    }
}

/// The branch predictor is self-consistent on arbitrary outcome
/// sequences: speculative history repair never panics and stats add up.
#[test]
fn predictor_handles_arbitrary_outcomes() {
    for case in 0..24u64 {
        let mut rng = Xoshiro256StarStar::seed_from(0xF00 + case);
        let mut bp = BranchPredictor::new(PredictorConfig::default());
        let n = rng.range_between(1, 500);
        for _ in 0..n {
            let taken = rng.chance(0.5);
            let pc = 0x400 + rng.range(64) * 4;
            let br = Instruction::cond_branch(pc, mlpwin::isa::ArchReg::int(1), taken, 0x9000);
            let o = bp.predict(&br);
            bp.resolve(&br, &o);
        }
        let s = bp.stats();
        assert_eq!(s.conditional_branches, n, "case {case}");
        assert!(
            s.direction_mispredicts <= s.conditional_branches,
            "case {case}"
        );
    }
}
